//! Property-based tests for the data substrate.

use airdata::csvio;
use airdata::generate::{generate_station, GeneratorConfig, StationData};
use airdata::impute;
use airdata::profile::StationProfile;
use airdata::schema::{Feature, STATIONS};
use proptest::prelude::*;

fn station_strategy() -> impl Strategy<Value = &'static str> {
    prop::sample::select(STATIONS.to_vec())
}

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (10_u64..400, 0_u64..1000, 0.0_f64..0.2).prop_map(|(hours, seed, missing)| GeneratorConfig {
        start: (2013, 3, 1),
        hours,
        seed,
        missing_rate: missing,
    })
}

fn bitwise_eq(a: &StationData, b: &StationData) -> bool {
    a.records.len() == b.records.len()
        && a.records.iter().zip(&b.records).all(|(x, y)| {
            (x.year, x.month, x.day, x.hour) == (y.year, y.month, y.day, y.hour)
                && x.values.iter().zip(&y.values).all(|(u, v)| u.to_bits() == v.to_bits())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generation is deterministic and always produces in-range,
    /// physically-floored values (or NaN).
    #[test]
    fn generator_invariants(name in station_strategy(), cfg in config_strategy()) {
        let p = StationProfile::of(name);
        let a = generate_station(&p, &cfg);
        let b = generate_station(&p, &cfg);
        prop_assert!(bitwise_eq(&a, &b), "same config must regenerate identically");
        prop_assert_eq!(a.len() as u64, cfg.hours);
        for r in &a.records {
            prop_assert!((1..=12).contains(&r.month));
            prop_assert!((1..=31).contains(&r.day));
            prop_assert!(r.hour < 24);
            for (f, &v) in Feature::ALL.iter().zip(&r.values) {
                if !v.is_nan() {
                    prop_assert!(v >= f.floor(), "{f:?} = {v} below floor {}", f.floor());
                    prop_assert!(v.is_finite());
                }
            }
        }
    }

    /// Timestamps advance strictly by one hour per record.
    #[test]
    fn timestamps_are_consecutive(name in station_strategy(), hours in 5_u64..200, seed in 0_u64..100) {
        let data = generate_station(&StationProfile::of(name), &GeneratorConfig::short(hours, seed));
        for (i, w) in data.records.windows(2).enumerate() {
            let t0 = airdata::time::days_from_civil(w[0].year, w[0].month, w[0].day) * 24
                + i64::from(w[0].hour);
            let t1 = airdata::time::days_from_civil(w[1].year, w[1].month, w[1].day) * 24
                + i64::from(w[1].hour);
            prop_assert_eq!(t1, t0 + 1, "gap at record {}", i);
        }
    }

    /// CSV round trips preserve timestamps, missingness pattern, and
    /// values to the serialised precision.
    #[test]
    fn csv_round_trip(name in station_strategy(), cfg in config_strategy()) {
        let data = generate_station(&StationProfile::of(name), &cfg);
        let parsed = csvio::from_csv_reader(csvio::to_csv_string(&data).as_bytes()).unwrap();
        prop_assert_eq!(parsed.records.len(), data.records.len());
        prop_assert_eq!(&parsed.station, &data.station);
        for (a, b) in parsed.records.iter().zip(&data.records) {
            prop_assert_eq!((a.year, a.month, a.day, a.hour), (b.year, b.month, b.day, b.hour));
            for (x, y) in a.values.iter().zip(&b.values) {
                if y.is_nan() {
                    prop_assert!(x.is_nan());
                } else {
                    prop_assert!((x - y).abs() < 5e-4, "{x} vs {y}");
                }
            }
        }
    }

    /// Imputation removes every gap and touches nothing observed.
    #[test]
    fn forward_fill_is_complete_and_conservative(name in station_strategy(), cfg in config_strategy()) {
        let original = generate_station(&StationProfile::of(name), &cfg);
        let mut filled = original.clone();
        impute::forward_fill(&mut filled);
        prop_assert!(impute::is_fully_observed(&filled));
        for (a, b) in original.records.iter().zip(&filled.records) {
            for (x, y) in a.values.iter().zip(&b.values) {
                if !x.is_nan() {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "observed cell changed");
                }
            }
        }
    }

    /// Civil-calendar conversion round-trips any day number.
    #[test]
    fn civil_round_trip(z in -1_000_000_i64..1_000_000) {
        let (y, m, d) = airdata::time::civil_from_days(z);
        prop_assert_eq!(airdata::time::days_from_civil(y, m, d), z);
    }
}
