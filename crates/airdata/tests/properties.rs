//! Property-style tests for the data substrate (deterministic sweeps
//! over the in-tree RNG; no proptest needed offline).

use airdata::csvio;
use airdata::generate::{generate_station, GeneratorConfig, StationData};
use airdata::impute;
use airdata::profile::StationProfile;
use airdata::schema::{Feature, STATIONS};
use linalg::rng::{rng_for, Rng, SliceRandom};

const CASES: usize = 24;

fn random_station(rng: &mut impl Rng) -> &'static str {
    STATIONS.choose(rng).expect("stations are non-empty")
}

fn random_config(rng: &mut impl Rng) -> GeneratorConfig {
    GeneratorConfig {
        start: (2013, 3, 1),
        hours: rng.gen_range(10..400u64),
        seed: rng.gen_range(0..1000u64),
        missing_rate: rng.gen_range(0.0..0.2),
    }
}

fn bitwise_eq(a: &StationData, b: &StationData) -> bool {
    a.records.len() == b.records.len()
        && a.records.iter().zip(&b.records).all(|(x, y)| {
            (x.year, x.month, x.day, x.hour) == (y.year, y.month, y.day, y.hour)
                && x.values
                    .iter()
                    .zip(&y.values)
                    .all(|(u, v)| u.to_bits() == v.to_bits())
        })
}

/// Generation is deterministic and always produces in-range,
/// physically-floored values (or NaN).
#[test]
fn generator_invariants() {
    let mut rng = rng_for(0xA1D, 1);
    for _ in 0..CASES {
        let name = random_station(&mut rng);
        let cfg = random_config(&mut rng);
        let p = StationProfile::of(name);
        let a = generate_station(&p, &cfg);
        let b = generate_station(&p, &cfg);
        assert!(
            bitwise_eq(&a, &b),
            "same config must regenerate identically"
        );
        assert_eq!(a.len() as u64, cfg.hours);
        for r in &a.records {
            assert!((1..=12).contains(&r.month));
            assert!((1..=31).contains(&r.day));
            assert!(r.hour < 24);
            for (f, &v) in Feature::ALL.iter().zip(&r.values) {
                if !v.is_nan() {
                    assert!(v >= f.floor(), "{f:?} = {v} below floor {}", f.floor());
                    assert!(v.is_finite());
                }
            }
        }
    }
}

/// Timestamps advance strictly by one hour per record.
#[test]
fn timestamps_are_consecutive() {
    let mut rng = rng_for(0xA1D, 2);
    for _ in 0..CASES {
        let name = random_station(&mut rng);
        let hours = rng.gen_range(5..200u64);
        let seed = rng.gen_range(0..100u64);
        let data = generate_station(
            &StationProfile::of(name),
            &GeneratorConfig::short(hours, seed),
        );
        for (i, w) in data.records.windows(2).enumerate() {
            let t0 = airdata::time::days_from_civil(w[0].year, w[0].month, w[0].day) * 24
                + i64::from(w[0].hour);
            let t1 = airdata::time::days_from_civil(w[1].year, w[1].month, w[1].day) * 24
                + i64::from(w[1].hour);
            assert_eq!(t1, t0 + 1, "gap at record {i}");
        }
    }
}

/// CSV round trips preserve timestamps, missingness pattern, and
/// values to the serialised precision.
#[test]
fn csv_round_trip() {
    let mut rng = rng_for(0xA1D, 3);
    for _ in 0..CASES {
        let name = random_station(&mut rng);
        let cfg = random_config(&mut rng);
        let data = generate_station(&StationProfile::of(name), &cfg);
        let parsed = csvio::from_csv_reader(csvio::to_csv_string(&data).as_bytes()).unwrap();
        assert_eq!(parsed.records.len(), data.records.len());
        assert_eq!(&parsed.station, &data.station);
        for (a, b) in parsed.records.iter().zip(&data.records) {
            assert_eq!(
                (a.year, a.month, a.day, a.hour),
                (b.year, b.month, b.day, b.hour)
            );
            for (x, y) in a.values.iter().zip(&b.values) {
                if y.is_nan() {
                    assert!(x.is_nan());
                } else {
                    assert!((x - y).abs() < 5e-4, "{x} vs {y}");
                }
            }
        }
    }
}

/// Imputation removes every gap and touches nothing observed.
#[test]
fn forward_fill_is_complete_and_conservative() {
    let mut rng = rng_for(0xA1D, 4);
    for _ in 0..CASES {
        let name = random_station(&mut rng);
        let cfg = random_config(&mut rng);
        let original = generate_station(&StationProfile::of(name), &cfg);
        let mut filled = original.clone();
        impute::forward_fill(&mut filled);
        assert!(impute::is_fully_observed(&filled));
        for (a, b) in original.records.iter().zip(&filled.records) {
            for (x, y) in a.values.iter().zip(&b.values) {
                if !x.is_nan() {
                    assert_eq!(x.to_bits(), y.to_bits(), "observed cell changed");
                }
            }
        }
    }
}

/// Civil-calendar conversion round-trips any day number.
#[test]
fn civil_round_trip() {
    let mut rng = rng_for(0xA1D, 5);
    for _ in 0..500 {
        let z = rng.gen_range(-1_000_000i64..1_000_000);
        let (y, m, d) = airdata::time::civil_from_days(z);
        assert_eq!(airdata::time::days_from_civil(y, m, d), z);
    }
}
