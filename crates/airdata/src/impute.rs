//! Missing-value imputation.
//!
//! Hourly sensor series are strongly autocorrelated, so the standard
//! treatment (and what preprocessing of the UCI files typically does) is
//! forward-fill along time with a column-mean fallback for leading gaps
//! or entirely-missing columns.

use crate::generate::StationData;
use crate::schema::Feature;
#[cfg(test)]
use crate::schema::NUM_FEATURES;

/// Forward-fills every feature column in place; leading missing values
/// (and fully-missing columns) fall back to the column mean, or 0 when a
/// column has no observed value at all.
///
/// Returns the number of cells imputed.
pub fn forward_fill(data: &mut StationData) -> usize {
    let mut imputed = 0usize;
    for f in Feature::ALL {
        let idx = f.index();
        // Column mean over observed cells.
        let mut sum = 0.0;
        let mut count = 0usize;
        for r in &data.records {
            let v = r.values[idx];
            if !v.is_nan() {
                sum += v;
                count += 1;
            }
        }
        let fallback = if count > 0 { sum / count as f64 } else { 0.0 };
        let mut last: Option<f64> = None;
        for r in &mut data.records {
            let v = r.values[idx];
            if v.is_nan() {
                r.values[idx] = last.unwrap_or(fallback);
                imputed += 1;
            } else {
                last = Some(v);
            }
        }
    }
    imputed
}

/// Drops records that still contain missing values (use instead of
/// [`forward_fill`] when unbiased marginals matter more than length).
///
/// Returns the number of records removed.
pub fn drop_incomplete(data: &mut StationData) -> usize {
    let before = data.records.len();
    data.records.retain(|r| r.is_complete());
    before - data.records.len()
}

/// Fraction of missing cells remaining.
pub fn missing_cells(data: &StationData) -> usize {
    data.records
        .iter()
        .map(|r| r.values.iter().filter(|v| v.is_nan()).count())
        .sum()
}

/// Convenience check used by tests and examples.
pub fn is_fully_observed(data: &StationData) -> bool {
    missing_cells(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_station, GeneratorConfig};
    use crate::profile::StationProfile;
    use crate::schema::Record;

    fn noisy() -> StationData {
        generate_station(
            &StationProfile::of("Changping"),
            &GeneratorConfig {
                missing_rate: 0.1,
                ..GeneratorConfig::short(500, 3)
            },
        )
    }

    #[test]
    fn forward_fill_removes_all_gaps() {
        let mut data = noisy();
        let before = missing_cells(&data);
        assert!(before > 0, "generator produced no gaps to test with");
        let imputed = forward_fill(&mut data);
        assert_eq!(imputed, before);
        assert!(is_fully_observed(&data));
    }

    #[test]
    fn forward_fill_copies_the_previous_observation() {
        let mut data = noisy();
        // Find a missing cell with an observed predecessor.
        let mut target = None;
        'outer: for i in 1..data.records.len() {
            for f in Feature::ALL {
                if data.records[i].get(f).is_nan() && !data.records[i - 1].get(f).is_nan() {
                    target = Some((i, f, data.records[i - 1].get(f)));
                    break 'outer;
                }
            }
        }
        let (i, f, expect) = target.expect("no forward-fillable gap found");
        forward_fill(&mut data);
        assert_eq!(data.records[i].get(f), expect);
    }

    #[test]
    fn leading_gap_uses_column_mean() {
        let mut data = StationData {
            station: "T".into(),
            records: vec![
                Record {
                    year: 2013,
                    month: 3,
                    day: 1,
                    hour: 0,
                    values: [f64::NAN; NUM_FEATURES],
                },
                Record {
                    year: 2013,
                    month: 3,
                    day: 1,
                    hour: 1,
                    values: [2.0; NUM_FEATURES],
                },
                Record {
                    year: 2013,
                    month: 3,
                    day: 1,
                    hour: 2,
                    values: [4.0; NUM_FEATURES],
                },
            ],
        };
        forward_fill(&mut data);
        assert_eq!(data.records[0].get(Feature::Pm25), 3.0);
    }

    #[test]
    fn fully_missing_column_falls_back_to_zero() {
        let mut data = StationData {
            station: "T".into(),
            records: vec![Record {
                year: 2013,
                month: 3,
                day: 1,
                hour: 0,
                values: [f64::NAN; NUM_FEATURES],
            }],
        };
        forward_fill(&mut data);
        assert!(is_fully_observed(&data));
        assert_eq!(data.records[0].get(Feature::O3), 0.0);
    }

    #[test]
    fn drop_incomplete_keeps_only_complete_records() {
        let mut data = noisy();
        let removed = drop_incomplete(&mut data);
        assert!(removed > 0);
        assert!(is_fully_observed(&data));
    }
}
