//! Ready-made node populations for the experiments.
//!
//! Three builders cover everything the evaluation needs:
//!
//! * [`realistic_nodes`] — the §V-A setting: 10 of the 12 air-quality
//!   stations, one input feature (PM10) and one label (PM2.5) per node.
//! * [`homogeneous_nodes`] — the §II "similar participants" setting
//!   behind Table I / Fig. 1: every node samples the same relation, so
//!   any selection mechanism performs alike.
//! * [`heterogeneous_nodes`] — the §II "dissimilar participants" setting
//!   behind Table II / Fig. 2: nodes occupy shifted data ranges and some
//!   even invert the feature/label relation, so random selection is
//!   catastrophic.

use mlkit::DenseDataset;

use linalg::rng as lrng;
use linalg::Matrix;

use crate::generate::{generate_station, GeneratorConfig};
use crate::impute;
use crate::profile::StationProfile;
use crate::schema::Feature;

/// A node's dataset plus its provenance label.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeData {
    /// Human-readable origin (station name or synthetic spec).
    pub name: String,
    /// The node's local supervised dataset `D_k`.
    pub dataset: DenseDataset,
}

/// The paper's realistic setting: `n_nodes ≤ 12` stations, each node's
/// dataset pairing one input feature with one label feature.
///
/// Missing values are forward-filled before extraction.
///
/// # Panics
/// Panics if `n_nodes` is 0 or exceeds 12.
pub fn realistic_nodes(
    n_nodes: usize,
    hours: u64,
    seed: u64,
    input: Feature,
    label: Feature,
) -> Vec<NodeData> {
    realistic_nodes_multi(n_nodes, hours, seed, &[input], label)
}

/// Multi-feature variant of [`realistic_nodes`]: the paper's formulation
/// is d-dimensional throughout (queries are `2d`-boundary vectors), this
/// builds nodes whose joint space is `inputs.len() + 1` dimensional.
///
/// # Panics
/// Panics if `n_nodes` is outside `1..=12`, `inputs` is empty, or the
/// label appears among the inputs.
pub fn realistic_nodes_multi(
    n_nodes: usize,
    hours: u64,
    seed: u64,
    inputs: &[Feature],
    label: Feature,
) -> Vec<NodeData> {
    assert!(
        (1..=12).contains(&n_nodes),
        "the dataset has 12 stations; {n_nodes} nodes requested"
    );
    assert!(!inputs.is_empty(), "need at least one input feature");
    assert!(
        !inputs.contains(&label),
        "label {label:?} cannot also be an input"
    );
    let profiles = StationProfile::all();
    profiles[..n_nodes]
        .iter()
        .map(|p| {
            let mut data = generate_station(p, &GeneratorConfig::short(hours, seed));
            impute::forward_fill(&mut data);
            let x = data.to_matrix(inputs);
            let y = data.feature_column(label);
            NodeData {
                name: p.name.clone(),
                dataset: DenseDataset::new(x, y),
            }
        })
        .collect()
}

/// Generation spec for one synthetic regression node.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeSpec {
    /// Uniform input range `[lo, hi)`.
    pub x_range: (f64, f64),
    /// Linear slope of the label on the input.
    pub slope: f64,
    /// Label intercept.
    pub intercept: f64,
    /// Gaussian label-noise standard deviation.
    pub noise_std: f64,
}

impl NodeSpec {
    /// Samples `n` points from the spec.
    pub fn sample(&self, n: usize, seed: u64) -> DenseDataset {
        use linalg::rng::Rng;
        let mut rng = lrng::rng_for(seed, 0x5CE_EA10);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x = rng.gen_range(self.x_range.0..self.x_range.1);
            let y = self.slope * x + self.intercept + lrng::normal(&mut rng, 0.0, self.noise_std);
            xs.push(vec![x]);
            ys.push(y);
        }
        DenseDataset::new(Matrix::from_rows(&xs), ys)
    }
}

/// Specs for the homogeneous population: every node shares the same
/// relation and input range (§II, Table I / Fig. 1).
pub fn homogeneous_specs(n_nodes: usize) -> Vec<NodeSpec> {
    assert!(n_nodes > 0, "need at least one node");
    (0..n_nodes)
        .map(|_| NodeSpec {
            x_range: (0.0, 50.0),
            slope: 1.8,
            intercept: 5.0,
            noise_std: 5.0,
        })
        .collect()
}

/// Specs for the heterogeneous population (§II, Table II / Fig. 2).
///
/// Node 0 is the *leader-like* pattern; node 1 repeats it (the compatible
/// node the mechanism should find); the remaining nodes walk away from it
/// in range, slope sign and magnitude — the paper's "negative in one
/// participant and positive in the other" observation.
pub fn heterogeneous_specs(n_nodes: usize) -> Vec<NodeSpec> {
    assert!(
        n_nodes >= 2,
        "heterogeneous scenario needs at least leader + one node"
    );
    let mut specs = Vec::with_capacity(n_nodes);
    // Leader pattern and its compatible twin.
    specs.push(NodeSpec {
        x_range: (0.0, 20.0),
        slope: 2.0,
        intercept: 3.0,
        noise_std: 2.0,
    });
    specs.push(NodeSpec {
        x_range: (1.0, 21.0),
        slope: 2.0,
        intercept: 3.5,
        noise_std: 2.0,
    });
    // Everything else: progressively shifted, scaled and sign-flipped.
    let templates = [
        NodeSpec {
            x_range: (30.0, 55.0),
            slope: -2.5,
            intercept: 120.0,
            noise_std: 3.0,
        },
        NodeSpec {
            x_range: (60.0, 90.0),
            slope: 0.4,
            intercept: -40.0,
            noise_std: 4.0,
        },
        NodeSpec {
            x_range: (-40.0, -10.0),
            slope: -4.0,
            intercept: -15.0,
            noise_std: 3.0,
        },
        NodeSpec {
            x_range: (100.0, 140.0),
            slope: 6.0,
            intercept: 300.0,
            noise_std: 8.0,
        },
        NodeSpec {
            x_range: (15.0, 45.0),
            slope: -1.0,
            intercept: 60.0,
            noise_std: 2.5,
        },
        NodeSpec {
            x_range: (-80.0, -50.0),
            slope: 3.0,
            intercept: 200.0,
            noise_std: 5.0,
        },
        NodeSpec {
            x_range: (200.0, 260.0),
            slope: -0.8,
            intercept: 250.0,
            noise_std: 6.0,
        },
        NodeSpec {
            x_range: (50.0, 70.0),
            slope: 5.0,
            intercept: -150.0,
            noise_std: 4.0,
        },
    ];
    for i in 2..n_nodes {
        let t = &templates[(i - 2) % templates.len()];
        // Shift repeated templates so very large populations stay distinct.
        let lap = ((i - 2) / templates.len()) as f64;
        specs.push(NodeSpec {
            x_range: (t.x_range.0 + 300.0 * lap, t.x_range.1 + 300.0 * lap),
            ..t.clone()
        });
    }
    specs
}

/// Materialises a population of synthetic nodes from specs.
pub fn nodes_from_specs(specs: &[NodeSpec], samples_per_node: usize, seed: u64) -> Vec<NodeData> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| NodeData {
            name: format!("synthetic-{i}"),
            dataset: s.sample(samples_per_node, lrng::derive_seed(seed, i as u64)),
        })
        .collect()
}

/// The homogeneous population (§II, Table I / Fig. 1).
pub fn homogeneous_nodes(n_nodes: usize, samples_per_node: usize, seed: u64) -> Vec<NodeData> {
    nodes_from_specs(&homogeneous_specs(n_nodes), samples_per_node, seed)
}

/// The heterogeneous population (§II, Table II / Fig. 2).
pub fn heterogeneous_nodes(n_nodes: usize, samples_per_node: usize, seed: u64) -> Vec<NodeData> {
    nodes_from_specs(&heterogeneous_specs(n_nodes), samples_per_node, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::stats;

    #[test]
    fn realistic_nodes_have_expected_shape() {
        let nodes = realistic_nodes(10, 500, 3, Feature::Pm10, Feature::Pm25);
        assert_eq!(nodes.len(), 10);
        for n in &nodes {
            assert_eq!(n.dataset.len(), 500);
            assert_eq!(n.dataset.dim(), 1);
            assert!(
                n.dataset.x().all_finite(),
                "{} has NaNs after imputation",
                n.name
            );
            assert!(n.dataset.y().iter().all(|v| v.is_finite()));
        }
        // Distinct stations -> distinct data.
        assert_ne!(nodes[0].dataset, nodes[1].dataset);
    }

    #[test]
    #[should_panic(expected = "12 stations")]
    fn too_many_realistic_nodes_rejected() {
        realistic_nodes(13, 10, 0, Feature::Pm10, Feature::Pm25);
    }

    #[test]
    fn homogeneous_nodes_share_their_pattern() {
        let nodes = homogeneous_nodes(10, 400, 7);
        assert_eq!(nodes.len(), 10);
        let slopes: Vec<f64> = nodes
            .iter()
            .map(|n| {
                let xs = n.dataset.x().col(0);
                stats::ols_line(&xs, n.dataset.y()).0
            })
            .collect();
        for s in &slopes {
            assert!(
                (s - 1.8).abs() < 0.15,
                "slope {s} strays from the shared pattern"
            );
        }
    }

    #[test]
    fn heterogeneous_nodes_disagree_in_slope_sign_and_range() {
        let nodes = heterogeneous_nodes(10, 400, 9);
        let specs = heterogeneous_specs(10);
        // The compatible twin matches the leader.
        assert_eq!(specs[0].slope, specs[1].slope);
        // At least one node inverts the relation.
        assert!(specs.iter().any(|s| s.slope < 0.0));
        // Ranges of leader and node 2 are disjoint.
        assert!(specs[2].x_range.0 > specs[0].x_range.1);
        // Materialised data respects the spec ranges.
        for (node, spec) in nodes.iter().zip(&specs) {
            let xs = node.dataset.x().col(0);
            let (lo, hi) = stats::min_max(&xs).unwrap();
            assert!(lo >= spec.x_range.0 && hi <= spec.x_range.1);
        }
    }

    #[test]
    fn large_heterogeneous_population_stays_distinct() {
        let specs = heterogeneous_specs(14);
        assert_eq!(specs.len(), 14);
        // Template repeats are shifted, not identical.
        assert_ne!(specs[2].x_range, specs[10].x_range);
    }

    #[test]
    fn node_sampling_is_deterministic() {
        let a = heterogeneous_nodes(5, 100, 42);
        let b = heterogeneous_nodes(5, 100, 42);
        assert_eq!(a, b);
        let c = heterogeneous_nodes(5, 100, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn spec_sampling_respects_noise() {
        let spec = NodeSpec {
            x_range: (0.0, 10.0),
            slope: 1.0,
            intercept: 0.0,
            noise_std: 0.0,
        };
        let ds = spec.sample(50, 1);
        for (row, &y) in ds.x().row_iter().zip(ds.y()) {
            assert!((y - row[0]).abs() < 1e-12, "noise-free spec must be exact");
        }
    }
}
