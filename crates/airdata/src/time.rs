//! Civil-calendar arithmetic for hourly timestamps.
//!
//! The dataset spans 2013-03-01T00 to 2017-02-28T23 (35 064 hourly
//! records per station). We only need day-precision calendar conversion
//! (Howard Hinnant's `days_from_civil` algorithm) plus an hour offset, so
//! no external time crate is warranted.

/// Days from the civil epoch 1970-01-01 for a Gregorian date.
pub fn days_from_civil(year: i32, month: u32, day: u32) -> i64 {
    debug_assert!((1..=12).contains(&month), "month {month}");
    debug_assert!((1..=31).contains(&day), "day {day}");
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((month + 9) % 12); // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + i64::from(day) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(mut z: i64) -> (i32, u32, u32) {
    z += 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// An hourly timestamp: `(year, month, day, hour)` at `hours` hours after
/// the given civil start date (hour 0).
pub fn timestamp_at(
    start_year: i32,
    start_month: u32,
    start_day: u32,
    hours: u64,
) -> (i32, u32, u32, u32) {
    let start_days = days_from_civil(start_year, start_month, start_day);
    let total_hours = start_days * 24 + hours as i64;
    let days = total_hours.div_euclid(24);
    let hour = total_hours.rem_euclid(24) as u32;
    let (y, m, d) = civil_from_days(days);
    (y, m, d, hour)
}

/// Day-of-year in `[0, 365]`, used to phase the seasonal cycle.
pub fn day_of_year(year: i32, month: u32, day: u32) -> u32 {
    (days_from_civil(year, month, day) - days_from_civil(year, 1, 1)) as u32
}

/// Number of hourly records in the dataset's span
/// (2013-03-01T00 .. 2017-02-28T23 inclusive).
pub const DATASET_HOURS: u64 = 35_064;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn round_trip_across_leap_years() {
        for &(y, m, d) in &[
            (2013, 3, 1),
            (2016, 2, 29), // leap day
            (2017, 2, 28),
            (2000, 12, 31),
            (1999, 1, 1),
        ] {
            let z = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(z), (y, m, d), "for {y}-{m}-{d}");
        }
    }

    #[test]
    fn dataset_span_is_35064_hours() {
        let start = days_from_civil(2013, 3, 1);
        let end = days_from_civil(2017, 3, 1); // exclusive
        assert_eq!((end - start) * 24, DATASET_HOURS as i64);
    }

    #[test]
    fn timestamp_walks_hours() {
        assert_eq!(timestamp_at(2013, 3, 1, 0), (2013, 3, 1, 0));
        assert_eq!(timestamp_at(2013, 3, 1, 23), (2013, 3, 1, 23));
        assert_eq!(timestamp_at(2013, 3, 1, 24), (2013, 3, 2, 0));
        // Last record of the dataset.
        assert_eq!(
            timestamp_at(2013, 3, 1, DATASET_HOURS - 1),
            (2017, 2, 28, 23)
        );
    }

    #[test]
    fn day_of_year_is_zero_based() {
        assert_eq!(day_of_year(2014, 1, 1), 0);
        assert_eq!(day_of_year(2014, 12, 31), 364);
        assert_eq!(day_of_year(2016, 12, 31), 365); // leap year
    }
}
