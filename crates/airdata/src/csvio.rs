//! UCI-format CSV I/O.
//!
//! The real files are named `PRSA_Data_<Station>_20130301-20170228.csv`
//! with the header
//! `No,year,month,day,hour,PM2.5,PM10,SO2,NO2,CO,O3,TEMP,PRES,DEWP,RAIN,wd,WSPM,station`
//! and `NA` for missing cells. This module writes byte-compatible files
//! (wind direction is synthesised since our generator does not model it)
//! and reads either real or generated files back into [`StationData`].

use std::fmt::Write as _;
use std::fs;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::generate::StationData;
use crate::schema::{Feature, Record, NUM_FEATURES};

/// The UCI column header.
pub const HEADER: &str =
    "No,year,month,day,hour,PM2.5,PM10,SO2,NO2,CO,O3,TEMP,PRES,DEWP,RAIN,wd,WSPM,station";

const WIND_DIRECTIONS: [&str; 16] = [
    "N", "NNE", "NE", "ENE", "E", "ESE", "SE", "SSE", "S", "SSW", "SW", "WSW", "W", "WNW", "NW",
    "NNW",
];

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NA".to_string()
    } else if (v - v.round()).abs() < 5e-5 {
        format!("{}", v.round())
    } else {
        format!("{v:.4}")
    }
}

/// Serialises one station to a UCI-format CSV string.
pub fn to_csv_string(data: &StationData) -> String {
    let mut out = String::with_capacity(64 * (data.records.len() + 1));
    out.push_str(HEADER);
    out.push('\n');
    for (i, r) in data.records.iter().enumerate() {
        // Deterministic pseudo wind direction from the record index.
        let wd = WIND_DIRECTIONS[(i * 7 + 3) % WIND_DIRECTIONS.len()];
        let _ = write!(out, "{},{},{},{},{}", i + 1, r.year, r.month, r.day, r.hour);
        for f in [
            Feature::Pm25,
            Feature::Pm10,
            Feature::So2,
            Feature::No2,
            Feature::Co,
            Feature::O3,
            Feature::Temp,
            Feature::Pres,
            Feature::Dewp,
            Feature::Rain,
        ] {
            let _ = write!(out, ",{}", format_value(r.get(f)));
        }
        let _ = write!(
            out,
            ",{wd},{},{}",
            format_value(r.get(Feature::Wspm)),
            data.station
        );
        out.push('\n');
    }
    out
}

/// Writes one station to a file at `path`.
pub fn write_csv(data: &StationData, path: &Path) -> io::Result<()> {
    let file = fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(to_csv_string(data).as_bytes())?;
    w.flush()
}

/// An error encountered while parsing a CSV file.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (message, 1-based line number).
    Parse(String, usize),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Parse(msg, line) => write!(f, "csv parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn parse_cell(cell: &str, line_no: usize) -> Result<f64, CsvError> {
    if cell == "NA" || cell.is_empty() {
        return Ok(f64::NAN);
    }
    cell.parse::<f64>()
        .map_err(|e| CsvError::Parse(format!("bad number {cell:?}: {e}"), line_no))
}

/// Parses UCI-format CSV content into a [`StationData`].
///
/// Column layout is taken from the header line, so files with the
/// original UCI column order and files missing the `wd` column both
/// parse.
pub fn from_csv_reader(reader: impl BufRead) -> Result<StationData, CsvError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| CsvError::Parse("empty file".into(), 1))??;
    let columns: Vec<&str> = header.trim().split(',').collect();
    let col_of = |name: &str| columns.iter().position(|&c| c == name);
    let year_col =
        col_of("year").ok_or_else(|| CsvError::Parse("missing 'year' column".into(), 1))?;
    let month_col =
        col_of("month").ok_or_else(|| CsvError::Parse("missing 'month' column".into(), 1))?;
    let day_col = col_of("day").ok_or_else(|| CsvError::Parse("missing 'day' column".into(), 1))?;
    let hour_col =
        col_of("hour").ok_or_else(|| CsvError::Parse("missing 'hour' column".into(), 1))?;
    let station_col = col_of("station");
    let feature_cols: Vec<(Feature, usize)> = Feature::ALL
        .iter()
        .map(|&f| {
            col_of(f.csv_name())
                .map(|c| (f, c))
                .ok_or_else(|| CsvError::Parse(format!("missing '{}' column", f.csv_name()), 1))
        })
        .collect::<Result<_, _>>()?;

    let mut station = String::new();
    let mut records = Vec::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.trim().split(',').collect();
        if cells.len() < columns.len() {
            return Err(CsvError::Parse(
                format!("expected {} cells, found {}", columns.len(), cells.len()),
                line_no,
            ));
        }
        let int = |c: usize| -> Result<i64, CsvError> {
            cells[c]
                .parse::<i64>()
                .map_err(|e| CsvError::Parse(format!("bad integer {:?}: {e}", cells[c]), line_no))
        };
        let mut values = [f64::NAN; NUM_FEATURES];
        for &(f, c) in &feature_cols {
            values[f.index()] = parse_cell(cells[c], line_no)?;
        }
        if let Some(sc) = station_col {
            if station.is_empty() {
                station = cells[sc].to_string();
            }
        }
        records.push(Record {
            year: int(year_col)? as i32,
            month: int(month_col)? as u32,
            day: int(day_col)? as u32,
            hour: int(hour_col)? as u32,
            values,
        });
    }
    Ok(StationData { station, records })
}

/// Reads a UCI-format CSV file from disk.
pub fn read_csv(path: &Path) -> Result<StationData, CsvError> {
    let file = fs::File::open(path)?;
    from_csv_reader(BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_station, GeneratorConfig};
    use crate::profile::StationProfile;

    fn sample() -> StationData {
        generate_station(
            &StationProfile::of("Dongsi"),
            &GeneratorConfig::short(100, 5),
        )
    }

    #[test]
    fn round_trip_preserves_records() {
        let data = sample();
        let csv = to_csv_string(&data);
        let parsed = from_csv_reader(csv.as_bytes()).unwrap();
        assert_eq!(parsed.station, "Dongsi");
        assert_eq!(parsed.records.len(), data.records.len());
        for (a, b) in parsed.records.iter().zip(&data.records) {
            assert_eq!(
                (a.year, a.month, a.day, a.hour),
                (b.year, b.month, b.day, b.hour)
            );
            for (x, y) in a.values.iter().zip(&b.values) {
                if y.is_nan() {
                    assert!(x.is_nan());
                } else {
                    assert!((x - y).abs() < 5e-4, "{x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn header_matches_uci_layout() {
        let csv = to_csv_string(&sample());
        assert!(csv.starts_with(HEADER));
        let first_row = csv.lines().nth(1).unwrap();
        assert_eq!(first_row.split(',').count(), HEADER.split(',').count());
        assert!(first_row.ends_with("Dongsi"));
    }

    #[test]
    fn missing_values_serialise_as_na() {
        let mut data = sample();
        data.records[0].set(Feature::Co, f64::NAN);
        let csv = to_csv_string(&data);
        let parsed = from_csv_reader(csv.as_bytes()).unwrap();
        assert!(parsed.records[0].get(Feature::Co).is_nan());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("airdata_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("PRSA_Data_Dongsi_test.csv");
        let data = sample();
        write_csv(&data, &path).unwrap();
        let parsed = read_csv(&path).unwrap();
        assert_eq!(parsed.records.len(), data.records.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_csv_reader("".as_bytes()).is_err());
        assert!(from_csv_reader("a,b,c\n1,2,3\n".as_bytes()).is_err());
        let bad_number = format!("{HEADER}\n1,2013,3,1,0,x,2,3,4,5,6,7,8,9,10,N,11,S\n");
        assert!(from_csv_reader(bad_number.as_bytes()).is_err());
        let short_row = format!("{HEADER}\n1,2013,3\n");
        assert!(from_csv_reader(short_row.as_bytes()).is_err());
    }

    #[test]
    fn header_without_wd_column_parses() {
        let csv =
            "No,year,month,day,hour,PM2.5,PM10,SO2,NO2,CO,O3,TEMP,PRES,DEWP,RAIN,WSPM,station\n\
                   1,2013,3,1,0,10,20,3,40,500,60,7,1010,2,0,3,Tiantan\n";
        let parsed = from_csv_reader(csv.as_bytes()).unwrap();
        assert_eq!(parsed.station, "Tiantan");
        assert_eq!(parsed.records[0].get(Feature::Pm25), 10.0);
        assert_eq!(parsed.records[0].get(Feature::Wspm), 3.0);
    }
}
