//! Per-station generation profiles.
//!
//! The real dataset's stations differ systematically: dense urban sites
//! (Dongsi, Wanshouxigong, Nongzhanguan) run high on PM/NO2/CO, the rural
//! northern sites (Dingling, Huairou, Changping) run low on primary
//! pollutants but higher on O3, and the remaining sites sit in between.
//! These profiles encode that cross-station heterogeneity — the property
//! the node-selection mechanism exists to exploit.

use crate::schema::STATIONS;

/// Broad land-use class of a monitoring site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SiteClass {
    /// Dense inner-city site: high primary pollutants.
    Urban,
    /// Mixed residential/industrial fringe.
    Suburban,
    /// Northern rural/background site: cleaner, more ozone.
    Rural,
}

/// The generation profile of one station.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StationProfile {
    /// Station name (one of [`STATIONS`]).
    pub name: String,
    /// Land-use class.
    pub class: SiteClass,
    /// Multiplier on the city-wide baseline of primary pollutants
    /// (PM2.5, PM10, SO2, NO2, CO).
    pub pollution_level: f64,
    /// Multiplier on ozone (photochemical; higher at clean sites).
    pub ozone_level: f64,
    /// Additive temperature offset in °C (urban heat island).
    pub temp_offset: f64,
    /// Multiplier on wind speed (open rural sites are windier).
    pub wind_level: f64,
    /// Station-specific ratio of coarse (PM10) to fine (PM2.5) particles.
    pub coarse_ratio: f64,
    /// Station-specific curvature of the PM10/PM2.5 relation: positive at
    /// dusty sites (coarse fraction grows during episodes), negative at
    /// combustion-dominated sites (fine fraction grows). This is what
    /// makes the per-station feature/label *pattern* - not just its range
    /// - differ, which the selection mechanism exists to exploit.
    pub coarse_curve: f64,
}

impl StationProfile {
    /// Profile of a named station of the UCI dataset.
    ///
    /// # Panics
    /// Panics if `name` is not one of [`STATIONS`].
    pub fn of(name: &str) -> StationProfile {
        let (class, pollution, ozone, temp, wind, coarse, curve) = match name {
            // Dense urban core: combustion-dominated, fine fraction grows
            // during episodes (negative curvature).
            "Dongsi" => (SiteClass::Urban, 1.22, 0.90, 1.2, 0.85, 1.30, -0.45),
            "Wanshouxigong" => (SiteClass::Urban, 1.25, 0.88, 1.1, 0.82, 1.32, -0.55),
            "Nongzhanguan" => (SiteClass::Urban, 1.18, 0.92, 1.1, 0.86, 1.26, -0.35),
            "Guanyuan" => (SiteClass::Urban, 1.15, 0.92, 1.0, 0.88, 1.24, -0.25),
            "Tiantan" => (SiteClass::Urban, 1.12, 0.95, 1.0, 0.90, 1.22, -0.15),
            "Wanliu" => (SiteClass::Urban, 1.17, 0.90, 0.9, 0.85, 1.28, -0.40),
            "Aotizhongxin" => (SiteClass::Suburban, 1.10, 0.97, 0.8, 0.92, 1.25, 0.10),
            // Industrial west / fringe: dusty, coarse fraction grows.
            "Gucheng" => (SiteClass::Suburban, 1.20, 0.90, 0.7, 0.90, 1.48, 0.65),
            "Shunyi" => (SiteClass::Suburban, 0.95, 1.02, 0.3, 1.05, 1.36, 0.45),
            // Northern rural / background: wind-blown dust dominates.
            "Changping" => (SiteClass::Rural, 0.80, 1.10, 0.0, 1.10, 1.30, 0.40),
            "Huairou" => (SiteClass::Rural, 0.70, 1.15, -0.5, 1.15, 1.24, 0.55),
            "Dingling" => (SiteClass::Rural, 0.62, 1.20, -0.8, 1.20, 1.18, 0.70),
            other => panic!("unknown station {other}"),
        };
        StationProfile {
            name: name.to_string(),
            class,
            pollution_level: pollution,
            ozone_level: ozone,
            temp_offset: temp,
            wind_level: wind,
            coarse_ratio: coarse,
            coarse_curve: curve,
        }
    }

    /// Profiles of all 12 stations, in [`STATIONS`] order.
    pub fn all() -> Vec<StationProfile> {
        STATIONS.iter().map(|s| StationProfile::of(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_station_has_a_profile() {
        let all = StationProfile::all();
        assert_eq!(all.len(), 12);
        for (p, s) in all.iter().zip(STATIONS) {
            assert_eq!(p.name, s);
        }
    }

    #[test]
    #[should_panic(expected = "unknown station")]
    fn unknown_station_panics() {
        StationProfile::of("Atlantis");
    }

    #[test]
    fn rural_sites_are_cleaner_and_more_ozone_rich_than_urban() {
        let dingling = StationProfile::of("Dingling");
        let dongsi = StationProfile::of("Dongsi");
        assert!(dingling.pollution_level < dongsi.pollution_level);
        assert!(dingling.ozone_level > dongsi.ozone_level);
        assert!(dingling.wind_level > dongsi.wind_level);
        assert_eq!(dingling.class, SiteClass::Rural);
        assert_eq!(dongsi.class, SiteClass::Urban);
    }

    #[test]
    fn pollution_levels_span_a_meaningful_range() {
        let all = StationProfile::all();
        let min = all
            .iter()
            .map(|p| p.pollution_level)
            .fold(f64::INFINITY, f64::min);
        let max = all.iter().map(|p| p.pollution_level).fold(0.0, f64::max);
        assert!(max / min > 1.5, "stations too homogeneous: {min}..{max}");
    }
}
