//! Synthetic *Beijing Multi-Site Air-Quality* data substrate.
//!
//! The paper's evaluation (§V-A) uses the UCI "Beijing Multi-Site
//! Air-Quality Data" dataset: 12 monitoring stations, hourly records from
//! 2013-03-01 to 2017-02-28, features PM2.5, PM10, SO2, NO2, CO, O3,
//! TEMP, PRES, DEWP, RAIN and WSPM; 10 of the 12 station files become the
//! 10 edge nodes. The dataset cannot be downloaded in this environment,
//! so this crate generates a synthetic stand-in with the same schema and
//! the properties the selection mechanism actually consumes: per-station
//! level shifts, seasonal and diurnal structure, cross-feature couplings
//! and missing values - plus a loader for the real UCI CSVs when they are
//! available (identical downstream API either way).
//!
//! * [`schema`] - features, units, station names, record layout.
//! * [`profile`] - per-station generation profiles (urban/suburban/rural).
//! * [`time`] - civil-calendar arithmetic for hourly timestamps.
//! * [`generate`] - the seasonal/diurnal/AR(1) synthetic generator.
//! * [`csvio`] - UCI-format CSV writer/reader ("NA" for missing).
//! * [`impute`] - forward-fill + column-mean imputation.
//! * [`scenario`] - ready-made node populations: the realistic multi-site
//!   scenario plus the controlled homogeneous/heterogeneous regression
//!   scenarios behind Tables I-II and Figs. 1-2.

pub mod csvio;
pub mod generate;
pub mod impute;
pub mod profile;
pub mod scenario;
pub mod schema;
pub mod time;

pub use generate::{generate_station, GeneratorConfig, StationData};
pub use schema::{Feature, Record, STATIONS};
