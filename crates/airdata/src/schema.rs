//! Schema of the Beijing Multi-Site Air-Quality dataset.

/// The 12 monitoring stations of the UCI dataset. The paper selects 10
/// files; [`crate::scenario::realistic_nodes`] does the same.
pub const STATIONS: [&str; 12] = [
    "Aotizhongxin",
    "Changping",
    "Dingling",
    "Dongsi",
    "Guanyuan",
    "Gucheng",
    "Huairou",
    "Nongzhanguan",
    "Shunyi",
    "Tiantan",
    "Wanliu",
    "Wanshouxigong",
];

/// Number of numeric features per record.
pub const NUM_FEATURES: usize = 11;

/// One numeric feature column of the dataset, in CSV column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Feature {
    /// PM2.5 concentration (µg/m³) — the usual prediction target.
    Pm25,
    /// PM10 concentration (µg/m³).
    Pm10,
    /// SO2 concentration (µg/m³).
    So2,
    /// NO2 concentration (µg/m³).
    No2,
    /// CO concentration (µg/m³).
    Co,
    /// O3 concentration (µg/m³).
    O3,
    /// Temperature (°C).
    Temp,
    /// Pressure (hPa).
    Pres,
    /// Dew point (°C).
    Dewp,
    /// Precipitation (mm).
    Rain,
    /// Wind speed (m/s).
    Wspm,
}

impl Feature {
    /// All features in CSV column order.
    pub const ALL: [Feature; NUM_FEATURES] = [
        Feature::Pm25,
        Feature::Pm10,
        Feature::So2,
        Feature::No2,
        Feature::Co,
        Feature::O3,
        Feature::Temp,
        Feature::Pres,
        Feature::Dewp,
        Feature::Rain,
        Feature::Wspm,
    ];

    /// Column index within a record's value array.
    pub fn index(self) -> usize {
        Feature::ALL
            .iter()
            .position(|&f| f == self)
            .expect("feature present in ALL")
    }

    /// The CSV header name used by the UCI files.
    pub fn csv_name(self) -> &'static str {
        match self {
            Feature::Pm25 => "PM2.5",
            Feature::Pm10 => "PM10",
            Feature::So2 => "SO2",
            Feature::No2 => "NO2",
            Feature::Co => "CO",
            Feature::O3 => "O3",
            Feature::Temp => "TEMP",
            Feature::Pres => "PRES",
            Feature::Dewp => "DEWP",
            Feature::Rain => "RAIN",
            Feature::Wspm => "WSPM",
        }
    }

    /// Parses a CSV header name.
    pub fn from_csv_name(name: &str) -> Option<Feature> {
        Feature::ALL.iter().copied().find(|f| f.csv_name() == name)
    }

    /// Physically sensible lower bound used to clamp generated values.
    pub fn floor(self) -> f64 {
        match self {
            Feature::Temp | Feature::Dewp => -40.0,
            Feature::Pres => 950.0,
            _ => 0.0,
        }
    }
}

/// One hourly observation at one station.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Record {
    /// Calendar year.
    pub year: i32,
    /// Month 1–12.
    pub month: u32,
    /// Day of month 1–31.
    pub day: u32,
    /// Hour 0–23.
    pub hour: u32,
    /// Feature values in [`Feature::ALL`] order; `NaN` marks a missing
    /// measurement (serialised as "NA" in the CSV form and as `null` in
    /// self-describing formats like JSON, which cannot represent NaN).
    #[cfg_attr(feature = "serde", serde(with = "nan_as_null"))]
    pub values: [f64; NUM_FEATURES],
}

/// Serialises the value array with missing (NaN) cells as `None`/`null`,
/// so records survive formats without NaN support.
#[cfg(feature = "serde")]
mod nan_as_null {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    use super::NUM_FEATURES;

    pub fn serialize<S: Serializer>(
        values: &[f64; NUM_FEATURES],
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        let opts: Vec<Option<f64>> = values
            .iter()
            .map(|v| if v.is_nan() { None } else { Some(*v) })
            .collect();
        opts.serialize(serializer)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        deserializer: D,
    ) -> Result<[f64; NUM_FEATURES], D::Error> {
        let opts: Vec<Option<f64>> = Vec::deserialize(deserializer)?;
        if opts.len() != NUM_FEATURES {
            return Err(serde::de::Error::invalid_length(
                opts.len(),
                &"an array of 11 feature values",
            ));
        }
        let mut out = [f64::NAN; NUM_FEATURES];
        for (o, v) in out.iter_mut().zip(opts) {
            *o = v.unwrap_or(f64::NAN);
        }
        Ok(out)
    }
}

impl Record {
    /// The value of one feature.
    pub fn get(&self, f: Feature) -> f64 {
        self.values[f.index()]
    }

    /// Sets the value of one feature.
    pub fn set(&mut self, f: Feature, v: f64) {
        self.values[f.index()] = v;
    }

    /// True when every feature is present (non-NaN).
    pub fn is_complete(&self) -> bool {
        self.values.iter().all(|v| !v.is_nan())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_distinct_stations() {
        let mut s = STATIONS.to_vec();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 12);
    }

    #[test]
    fn feature_indices_are_positional() {
        for (i, f) in Feature::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }

    #[test]
    fn csv_names_round_trip() {
        for f in Feature::ALL {
            assert_eq!(Feature::from_csv_name(f.csv_name()), Some(f));
        }
        assert_eq!(Feature::from_csv_name("nope"), None);
    }

    #[test]
    fn record_get_set() {
        let mut r = Record {
            year: 2013,
            month: 3,
            day: 1,
            hour: 0,
            values: [0.0; NUM_FEATURES],
        };
        r.set(Feature::O3, 42.0);
        assert_eq!(r.get(Feature::O3), 42.0);
        assert!(r.is_complete());
        r.set(Feature::Co, f64::NAN);
        assert!(!r.is_complete());
    }
}
