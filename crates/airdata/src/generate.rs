//! The synthetic hourly air-quality generator.
//!
//! Each station's series combines (a) a seasonal cycle (winter heating
//! raises PM/SO2/CO, summer sun raises O3), (b) a diurnal cycle (traffic
//! rush hours, afternoon photochemistry), (c) a slowly-mixing AR(1)
//! "stagnation episode" process that creates the multi-day pollution
//! episodes Beijing is known for, and (d) station-specific level shifts
//! from [`StationProfile`]. The absolute constants are calibrated to the
//! published ranges of the UCI dataset (PM2.5 mean ≈ 80 µg/m³ with
//! episodes beyond 400, TEMP −15…40 °C, PRES ≈ 990…1040 hPa).

use linalg::rng::Rng;

use linalg::rng as lrng;
use linalg::Matrix;

use crate::profile::StationProfile;
use crate::schema::{Feature, Record, NUM_FEATURES};
use crate::time;

/// Configuration of one generation run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GeneratorConfig {
    /// First timestamp: `(year, month, day)`, hour 0. The UCI span starts
    /// at 2013-03-01.
    pub start: (i32, u32, u32),
    /// Number of hourly records (the full dataset has
    /// [`time::DATASET_HOURS`]).
    pub hours: u64,
    /// Master seed; the station name is mixed in so that each station
    /// gets an independent stream.
    pub seed: u64,
    /// Probability that any single measurement is missing (the UCI files
    /// have roughly 1–4% missing cells).
    pub missing_rate: f64,
}

impl GeneratorConfig {
    /// The dataset-faithful configuration: full four-year hourly span.
    pub fn full(seed: u64) -> Self {
        Self {
            start: (2013, 3, 1),
            hours: time::DATASET_HOURS,
            seed,
            missing_rate: 0.02,
        }
    }

    /// A shorter span for tests and quick experiments.
    pub fn short(hours: u64, seed: u64) -> Self {
        Self {
            start: (2013, 3, 1),
            hours,
            seed,
            missing_rate: 0.02,
        }
    }
}

/// A generated (or loaded) station series.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StationData {
    /// Station name.
    pub station: String,
    /// Hourly records in chronological order.
    pub records: Vec<Record>,
}

impl StationData {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when there are no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// One feature as a column (NaN where missing).
    pub fn feature_column(&self, f: Feature) -> Vec<f64> {
        self.records.iter().map(|r| r.get(f)).collect()
    }

    /// Extracts the chosen features into a row-major matrix
    /// (NaN where missing; run [`crate::impute`] first if needed).
    pub fn to_matrix(&self, features: &[Feature]) -> Matrix {
        assert!(!features.is_empty(), "need at least one feature");
        let mut data = Vec::with_capacity(self.records.len() * features.len());
        for r in &self.records {
            data.extend(features.iter().map(|&f| r.get(f)));
        }
        Matrix::from_vec(self.records.len(), features.len(), data)
    }

    /// Fraction of missing cells across all features.
    pub fn missing_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let missing: usize = self
            .records
            .iter()
            .map(|r| r.values.iter().filter(|v| v.is_nan()).count())
            .sum();
        missing as f64 / (self.records.len() * NUM_FEATURES) as f64
    }
}

/// Deterministic per-station stream id derived from the station name.
fn station_stream(name: &str) -> u64 {
    name.bytes().fold(0xA17_u64, |acc, b| {
        acc.wrapping_mul(131).wrapping_add(u64::from(b))
    })
}

/// Generates one station's hourly series.
pub fn generate_station(profile: &StationProfile, config: &GeneratorConfig) -> StationData {
    let mut rng = lrng::rng_for(config.seed, station_stream(&profile.name));
    let mut records = Vec::with_capacity(config.hours as usize);

    // Slow AR(1) processes carried across hours.
    let mut episode = 0.0_f64; // regional stagnation/pollution episode
    let mut temp_anom = 0.0_f64; // synoptic temperature anomaly
    let mut wind_ar = 0.0_f64;

    for t in 0..config.hours {
        let (year, month, day, hour) =
            time::timestamp_at(config.start.0, config.start.1, config.start.2, t);
        let doy = time::day_of_year(year, month, day) as f64;
        // Seasonal phases: `winter` peaks mid-January, `summer` mid-July.
        let winter = (2.0 * std::f64::consts::PI * (doy - 15.0) / 365.25).cos();
        let summer = -winter;
        let hour_f = f64::from(hour);
        // Diurnal phases.
        let rush = ((hour_f - 8.0) / 1.8).powi(2).exp().recip()
            + ((hour_f - 19.0) / 1.8).powi(2).exp().recip();
        let afternoon = (-((hour_f - 14.0) / 3.5).powi(2)).exp();
        let daylight = (std::f64::consts::PI * (hour_f - 5.0) / 14.0)
            .sin()
            .max(0.0);

        // Advance slow processes.
        episode = 0.97 * episode + 0.24 * lrng::standard_normal(&mut rng);
        temp_anom = 0.995 * temp_anom + 0.12 * lrng::standard_normal(&mut rng);
        wind_ar = 0.90 * wind_ar + 0.30 * lrng::standard_normal(&mut rng);

        // --- Meteorology ---
        let temp = 13.0
            + 14.5 * summer
            + 4.5 * (afternoon - 0.35)
            + profile.temp_offset
            + 3.0 * temp_anom
            + lrng::normal(&mut rng, 0.0, 0.6);
        let pres = 1012.5 + 9.0 * winter - 0.12 * (temp - 13.0) + lrng::normal(&mut rng, 0.0, 1.5);
        let spread = (2.0 + 9.0 * (0.5 + 0.5 * winter) + 2.0 * wind_ar.abs()).max(0.5);
        let dewp = temp - spread + lrng::normal(&mut rng, 0.0, 1.0);
        let wind = (1.9
            * profile.wind_level
            * (1.0 + 0.25 * winter)
            * (0.55 + 0.45 * daylight)
            * (wind_ar * 0.45).exp())
        .max(0.0);
        let raining = rng.gen::<f64>() < 0.012 + 0.05 * summer.max(0.0);
        let rain = if raining {
            -2.0 * rng.gen::<f64>().max(1e-9).ln()
        } else {
            0.0
        };

        // Stagnation: calm, cold-season hours let pollutants accumulate.
        let stagnation = (0.8 * episode - 0.35 * (wind - 2.0))
            .exp()
            .clamp(0.05, 12.0);
        let washout = if rain > 0.5 { 0.55 } else { 1.0 };

        // --- Pollutants ---
        let pl = profile.pollution_level;
        let pm25 = (58.0
            * pl
            * stagnation
            * (1.0 + 0.38 * winter)
            * (0.85 + 0.35 * rush)
            * washout
            * lrng::normal(&mut rng, 1.0, 0.10).max(0.3))
        .max(2.0);
        let dust = if (60.0..150.0).contains(&doy) && rng.gen::<f64>() < 0.01 {
            150.0 + 250.0 * rng.gen::<f64>()
        } else {
            0.0
        };
        // Station-specific, mildly non-linear coarse/fine relation: the
        // effective PM10/PM2.5 ratio shifts with episode intensity in a
        // site-dependent direction (see `StationProfile::coarse_curve`).
        let effective_ratio =
            (profile.coarse_ratio + profile.coarse_curve * (pm25 / 300.0).min(2.0)).max(1.02);
        let pm10 =
            (effective_ratio * pm25 * lrng::normal(&mut rng, 1.0, 0.08).max(0.5) + dust + 6.0)
                .max(2.0);
        let so2 = (13.0
            * pl
            * (1.0 + 1.25 * winter.max(0.0))
            * stagnation.powf(0.6)
            * lrng::normal(&mut rng, 1.0, 0.18).max(0.2))
        .max(0.5);
        let no2 = (42.0
            * pl
            * (0.7 + 0.8 * rush)
            * stagnation.powf(0.5)
            * (1.0 - 0.25 * daylight)
            * lrng::normal(&mut rng, 1.0, 0.12).max(0.3))
        .max(2.0);
        let co = (950.0
            * pl
            * (1.0 + 0.75 * winter.max(0.0))
            * stagnation.powf(0.8)
            * lrng::normal(&mut rng, 1.0, 0.10).max(0.3))
        .max(100.0);
        let o3 = (profile.ozone_level
            * (16.0 + 95.0 * summer.max(0.0).powf(0.8) * daylight * afternoon.max(0.15))
            * lrng::normal(&mut rng, 1.0, 0.15).max(0.2)
            - 0.18 * no2)
            .max(1.0);

        let mut record = Record {
            year,
            month,
            day,
            hour,
            values: [pm25, pm10, so2, no2, co, o3, temp, pres, dewp, rain, wind],
        };
        for (i, f) in Feature::ALL.iter().enumerate() {
            record.values[i] = record.values[i].max(f.floor());
            if rng.gen::<f64>() < config.missing_rate {
                record.values[i] = f64::NAN;
            }
        }
        records.push(record);
    }

    StationData {
        station: profile.name.clone(),
        records,
    }
}

/// Generates all 12 stations with the same configuration.
pub fn generate_all(config: &GeneratorConfig) -> Vec<StationData> {
    StationProfile::all()
        .iter()
        .map(|p| generate_station(p, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::stats;

    fn gen(name: &str, hours: u64, seed: u64) -> StationData {
        generate_station(
            &StationProfile::of(name),
            &GeneratorConfig::short(hours, seed),
        )
    }

    fn complete(col: &[f64]) -> Vec<f64> {
        col.iter().copied().filter(|v| !v.is_nan()).collect()
    }

    #[test]
    fn generates_requested_length_and_timestamps() {
        let s = gen("Dongsi", 50, 1);
        assert_eq!(s.len(), 50);
        assert_eq!(
            (
                s.records[0].year,
                s.records[0].month,
                s.records[0].day,
                s.records[0].hour
            ),
            (2013, 3, 1, 0)
        );
        assert_eq!(s.records[25].hour, 1);
        assert_eq!(s.records[25].day, 2);
    }

    /// Bitwise equality that treats NaN (missing) cells as equal.
    fn bitwise_eq(a: &StationData, b: &StationData) -> bool {
        a.records.len() == b.records.len()
            && a.records.iter().zip(&b.records).all(|(x, y)| {
                (x.year, x.month, x.day, x.hour) == (y.year, y.month, y.day, y.hour)
                    && x.values
                        .iter()
                        .zip(&y.values)
                        .all(|(u, v)| u.to_bits() == v.to_bits())
            })
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = gen("Tiantan", 200, 7);
        let b = gen("Tiantan", 200, 7);
        assert!(bitwise_eq(&a, &b));
        let c = gen("Tiantan", 200, 8);
        assert!(!bitwise_eq(&a, &c));
    }

    #[test]
    fn stations_differ_under_the_same_seed() {
        let a = gen("Dongsi", 200, 7);
        let b = gen("Dingling", 200, 7);
        assert!(!bitwise_eq(&a, &b));
    }

    #[test]
    fn value_ranges_are_physically_plausible() {
        let s = gen("Guanyuan", 24 * 365, 3);
        let pm25 = complete(&s.feature_column(Feature::Pm25));
        let temp = complete(&s.feature_column(Feature::Temp));
        let pres = complete(&s.feature_column(Feature::Pres));
        let m = stats::mean(&pm25);
        assert!((30.0..180.0).contains(&m), "PM2.5 mean {m}");
        assert!(
            stats::max(&pm25).unwrap() > 150.0,
            "no pollution episodes generated"
        );
        assert!(stats::min(&pm25).unwrap() >= 2.0);
        let (tmin, tmax) = stats::min_max(&temp).unwrap();
        assert!(
            tmin < 5.0 && tmax > 22.0,
            "temperature seasonal span {tmin}..{tmax}"
        );
        let (pmin, pmax) = stats::min_max(&pres).unwrap();
        assert!(pmin > 960.0 && pmax < 1060.0, "pressure {pmin}..{pmax}");
    }

    #[test]
    fn pm25_pm10_strongly_correlated() {
        let s = gen("Shunyi", 24 * 120, 5);
        let pm25 = s.feature_column(Feature::Pm25);
        let pm10 = s.feature_column(Feature::Pm10);
        let pairs: Vec<(f64, f64)> = pm25
            .iter()
            .zip(&pm10)
            .filter(|(a, b)| !a.is_nan() && !b.is_nan())
            .map(|(&a, &b)| (a, b))
            .collect();
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = stats::pearson(&xs, &ys);
        assert!(r > 0.9, "PM2.5/PM10 correlation {r} too weak");
        // PM10 >= PM2.5 on average (coarse fraction).
        assert!(stats::mean(&ys) > stats::mean(&xs));
    }

    #[test]
    fn urban_sites_dirtier_than_rural() {
        let urban = gen("Wanshouxigong", 24 * 200, 11);
        let rural = gen("Dingling", 24 * 200, 11);
        let mu = stats::mean(&complete(&urban.feature_column(Feature::Pm25)));
        let mr = stats::mean(&complete(&rural.feature_column(Feature::Pm25)));
        assert!(mu > mr * 1.3, "urban {mu} vs rural {mr}");
        // ...and rural sites see more ozone.
        let ou = stats::mean(&complete(&urban.feature_column(Feature::O3)));
        let or = stats::mean(&complete(&rural.feature_column(Feature::O3)));
        assert!(or > ou, "ozone urban {ou} vs rural {or}");
    }

    #[test]
    fn missing_rate_is_respected() {
        let s = gen("Huairou", 24 * 100, 13);
        let frac = s.missing_fraction();
        assert!((0.01..0.035).contains(&frac), "missing fraction {frac}");
        let clean = generate_station(
            &StationProfile::of("Huairou"),
            &GeneratorConfig {
                missing_rate: 0.0,
                ..GeneratorConfig::short(100, 13)
            },
        );
        assert_eq!(clean.missing_fraction(), 0.0);
    }

    #[test]
    fn seasonal_cycle_present_in_temperature() {
        let s = generate_station(
            &StationProfile::of("Changping"),
            &GeneratorConfig {
                missing_rate: 0.0,
                ..GeneratorConfig::short(time::DATASET_HOURS, 2)
            },
        );
        let temp = s.feature_column(Feature::Temp);
        // July (2013) vs January (2014) means.
        let july: Vec<f64> = s
            .records
            .iter()
            .filter(|r| r.year == 2013 && r.month == 7)
            .map(|r| r.get(Feature::Temp))
            .collect();
        let january: Vec<f64> = s
            .records
            .iter()
            .filter(|r| r.year == 2014 && r.month == 1)
            .map(|r| r.get(Feature::Temp))
            .collect();
        assert!(stats::mean(&july) - stats::mean(&january) > 15.0);
        assert!(stats::std_dev(&temp) > 5.0);
    }

    #[test]
    fn to_matrix_extracts_selected_features() {
        let s = gen("Wanliu", 30, 4);
        let m = s.to_matrix(&[Feature::Pm10, Feature::Pm25]);
        assert_eq!(m.shape(), (30, 2));
        for (i, r) in s.records.iter().enumerate() {
            let a = m[(i, 0)];
            let b = r.get(Feature::Pm10);
            assert!(a == b || (a.is_nan() && b.is_nan()));
        }
    }

    #[test]
    fn generate_all_produces_twelve_stations() {
        let all = generate_all(&GeneratorConfig::short(20, 1));
        assert_eq!(all.len(), 12);
        let names: Vec<&str> = all.iter().map(|s| s.station.as_str()).collect();
        assert_eq!(names, crate::schema::STATIONS.to_vec());
    }
}
