//! Property-style tests for the selection mechanisms (deterministic
//! sweeps over the in-tree RNG; no proptest needed offline).

use airdata::scenario::{nodes_from_specs, NodeSpec};
use edgesim::EdgeNetwork;
use geom::Query;
use linalg::rng::{rng_for, Rng};
use selection::{
    AllNodes, DataCentric, FairStochastic, QueryDriven, RandomSelection, SelectionContext,
    SelectionPolicy, WithoutSelectivity,
};

const CASES: usize = 24;

fn random_specs(rng: &mut impl Rng) -> Vec<NodeSpec> {
    let count = rng.gen_range(2..6usize);
    (0..count)
        .map(|_| {
            let lo = rng.gen_range(-60.0..60.0);
            let span = rng.gen_range(5.0..50.0);
            NodeSpec {
                x_range: (lo, lo + span),
                slope: rng.gen_range(-3.0..3.0),
                intercept: rng.gen_range(-10.0..10.0),
                noise_std: 1.0,
            }
        })
        .collect()
}

fn build(specs: &[NodeSpec], seed: u64) -> EdgeNetwork {
    let nodes = nodes_from_specs(specs, 50, seed);
    let mut net =
        EdgeNetwork::from_datasets(nodes.into_iter().map(|n| (n.name, n.dataset)).collect());
    net.quantize_all(4, seed);
    net
}

fn query_over(net: &EdgeNetwork, id: u64) -> Query {
    Query::from_boundary_vec(id, &net.global_space().to_boundary_vec())
}

/// Every policy returns distinct, in-range nodes and at most ℓ.
#[test]
fn policies_return_sane_selections() {
    let mut rng = rng_for(0x5E1, 1);
    for _ in 0..CASES {
        let specs = random_specs(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let l = rng.gen_range(1..6usize);
        let net = build(&specs, seed);
        let q = query_over(&net, 0);
        let policies: Vec<Box<dyn SelectionPolicy>> = vec![
            Box::new(QueryDriven::top_l(l)),
            Box::new(RandomSelection { l, seed }),
            Box::new(AllNodes),
            Box::new(DataCentric::equal_weights(l)),
            Box::new(FairStochastic::new(l, seed)),
            Box::new(WithoutSelectivity(QueryDriven::top_l(l))),
        ];
        for p in &policies {
            let ctx = SelectionContext::new(&net, &q);
            let sel = p.select(&ctx);
            let cap = if p.name() == "all-nodes" {
                net.len()
            } else {
                l.min(net.len())
            };
            assert!(
                sel.len() <= cap,
                "{} selected {} > {}",
                p.name(),
                sel.len(),
                cap
            );
            let mut ids: Vec<usize> = sel.participants.iter().map(|x| x.node.0).collect();
            let before = ids.len();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), before, "{} duplicated nodes", p.name());
            for id in ids {
                assert!(id < net.len());
            }
            // Lambda weights always form a distribution (or are empty).
            let lambdas = sel.lambda_weights();
            if !lambdas.is_empty() {
                assert!((lambdas.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert!(lambdas.iter().all(|&w| w >= 0.0));
            }
        }
    }
}

/// Query-driven rankings never decrease when the query grows.
#[test]
fn growing_the_query_never_drops_a_node() {
    let mut rng = rng_for(0x5E1, 2);
    for _ in 0..CASES {
        let specs = random_specs(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let net = build(&specs, seed);
        let space = net.global_space();
        let small = Query::new(0, space.clone());
        let big = Query::new(1, space.expanded(10.0));
        let policy = QueryDriven {
            epsilon: 1e-9,
            ..QueryDriven::top_l(net.len())
        };
        let sel_small = policy.select(&SelectionContext::new(&net, &small));
        let sel_big = policy.select(&SelectionContext::new(&net, &big));
        // With epsilon ~ 0, any node supported by the small query is
        // still supported by the bigger one.
        let ids = |s: &selection::Selection| {
            let mut v: Vec<usize> = s.participants.iter().map(|p| p.node.0).collect();
            v.sort_unstable();
            v
        };
        for id in ids(&sel_small) {
            assert!(
                ids(&sel_big).contains(&id),
                "node {id} vanished when the query grew"
            );
        }
    }
}

/// The no-selectivity wrapper keeps exactly the same node set.
#[test]
fn without_selectivity_preserves_nodes() {
    let mut rng = rng_for(0x5E1, 3);
    for _ in 0..CASES {
        let specs = random_specs(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let l = rng.gen_range(1..5usize);
        let net = build(&specs, seed);
        let q = query_over(&net, 3);
        let inner = QueryDriven::top_l(l);
        let a = inner.select(&SelectionContext::new(&net, &q));
        let b = WithoutSelectivity(inner).select(&SelectionContext::new(&net, &q));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.participants.iter().zip(&b.participants) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.ranking, y.ranking);
            assert!(y.supporting_clusters.is_empty());
        }
    }
}

/// Random selection is stable per query id.
#[test]
fn random_selection_determinism() {
    let mut rng = rng_for(0x5E1, 4);
    for _ in 0..CASES {
        let specs = random_specs(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let net = build(&specs, seed);
        let pol = RandomSelection { l: 1, seed };
        let q0 = query_over(&net, 0);
        let ctx = SelectionContext::new(&net, &q0);
        assert_eq!(pol.select(&ctx), pol.select(&ctx));
    }
}
