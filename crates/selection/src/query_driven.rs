//! The paper's query-driven node-selection mechanism (§III-C).

use par::ThreadPool;

use crate::policy::{Participant, Selection, SelectionContext, SelectionPolicy, SupportingCluster};

/// Nodes per pool task when scoring a network. Fixed (independent of the
/// worker count) so the scored list is identical for any pool; small
/// because per-node scoring is `O(K·d)` — a few nodes amortise the task
/// dispatch without starving wide pools on mid-sized networks. Shared
/// with [`crate::cache`] so cached re-scoring chunks identically.
pub(crate) const NODE_CHUNK: usize = 8;

/// How the ranked list is cut down to the participant set (Eq. 5 and the
/// top-ℓ alternative the paper describes alongside it).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SelectionCap {
    /// Keep the ℓ best-ranked nodes (with positive ranking).
    TopL(usize),
    /// Keep every node with `r_i >= ψ` (Eq. 5).
    Threshold(f64),
    /// Keep every node with positive ranking.
    AllPositive,
}

/// Ranking formula. [`RankingRule::PaperEq4`] is the contribution; the
/// other two are the ablations DESIGN.md calls out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RankingRule {
    /// `r_i = p_i · K'/K` (Eq. 4).
    PaperEq4,
    /// `r_i = p_i` — ignore the supporting-cluster fraction.
    PotentialOnly,
    /// `r_i = K'/K` — ignore the overlap magnitudes.
    CountOnly,
}

/// The query-driven policy.
///
/// Only the nodes' cluster summaries are consulted — the leader-side cost
/// is `O(N · K · d)` arithmetic and no data moves, matching the paper's
/// "negligible calculations and communication" claim.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QueryDriven {
    /// Overlap threshold ε: clusters with `h_ik >= ε` support the query.
    pub epsilon: f64,
    /// How the ranked list becomes the participant set.
    pub cap: SelectionCap,
    /// Ranking formula (Eq. 4 unless running an ablation).
    pub rule: RankingRule,
}

impl QueryDriven {
    /// The paper's configuration with a given ℓ: `ε = 0.05`, Eq. 4
    /// ranking, top-ℓ cut.
    pub fn top_l(l: usize) -> Self {
        Self {
            epsilon: 0.05,
            cap: SelectionCap::TopL(l),
            rule: RankingRule::PaperEq4,
        }
    }

    /// Eq. 5 thresholding: all nodes with `r_i >= psi`.
    pub fn threshold(epsilon: f64, psi: f64) -> Self {
        Self {
            epsilon,
            cap: SelectionCap::Threshold(psi),
            rule: RankingRule::PaperEq4,
        }
    }

    /// Scores one node: `(ranking, supporting clusters)`.
    ///
    /// The supporting clusters are returned highest-overlap first, which
    /// is also the order incremental training visits them.
    pub fn score_node(
        &self,
        node: &edgesim::EdgeNode,
        query: &geom::Query,
    ) -> (f64, Vec<SupportingCluster>) {
        // The quantisation check must run *before* any summary access:
        // if it came second, a summaries() implementation that itself
        // panics on an unquantized node would mask the friendly
        // "call quantize_all first" guidance below.
        assert!(
            node.is_quantized(),
            "node {} has no cluster summaries; call EdgeNetwork::quantize_all first",
            node.id()
        );
        // Scoring may run on pool workers, so the per-node span is
        // wall-mode only (inert on the logical clock).
        let _trace_score = telemetry::trace::wall_span_args(
            "selection.score_node",
            &[("node", node.id().0 as u64)],
        );
        let summaries = node.summaries();
        let k_total = summaries.len();
        telemetry::counter!("qens_selection_overlap_evals_total").add(k_total as u64);
        self.rank_clusters(
            k_total,
            summaries
                .iter()
                .map(|s| (s.cluster_id, s.size, query.region().overlap_rate(&s.rect))),
        )
    }

    /// Eq. 3/4 over already-evaluated per-cluster overlaps
    /// `(cluster_id, size, h_ik)`: the ε filter, the overlap-descending
    /// sort, the potential sum (in sorted order) and the ranking rule.
    ///
    /// Shared by [`QueryDriven::score_node`] and the selection cache's
    /// delta re-scoring path ([`crate::cache`]) so both produce
    /// bit-identical `(ranking, supporting)` from identical overlaps.
    ///
    /// Non-finite overlaps are defensively skipped (and counted via
    /// `qens_selection_nonfinite_scores_total`) instead of reaching the
    /// `partial_cmp` sorts downstream — a poisoned summary must cost one
    /// cluster, not panic the whole selection.
    pub(crate) fn rank_clusters(
        &self,
        k_total: usize,
        clusters: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> (f64, Vec<SupportingCluster>) {
        let mut nonfinite = 0u64;
        let mut supporting: Vec<SupportingCluster> = clusters
            .into_iter()
            .filter_map(|(cluster_id, size, h)| {
                if !h.is_finite() {
                    nonfinite += 1;
                    return None;
                }
                (h >= self.epsilon).then_some(SupportingCluster {
                    cluster_id,
                    overlap: h,
                    size,
                })
            })
            .collect();
        if nonfinite > 0 {
            telemetry::counter!("qens_selection_nonfinite_scores_total").add(nonfinite);
        }
        telemetry::counter!("qens_selection_supporting_clusters_total")
            .add(supporting.len() as u64);
        supporting.sort_by(|a, b| {
            b.overlap
                .partial_cmp(&a.overlap)
                .expect("overlaps are finite")
        });
        let potential: f64 = supporting.iter().map(|c| c.overlap).sum(); // Eq. 3
        let fraction = if k_total == 0 {
            0.0
        } else {
            supporting.len() as f64 / k_total as f64
        };
        let ranking = match self.rule {
            RankingRule::PaperEq4 => potential * fraction,
            RankingRule::PotentialOnly => potential,
            RankingRule::CountOnly => fraction,
        };
        (ranking, supporting)
    }

    /// Builds the [`Participant`] entry for a scored node, or `None` when
    /// the node does not support the query. Shared with [`crate::cache`]
    /// so the cached path keeps the exact participation predicate.
    pub(crate) fn participant_for(
        &self,
        node: edgesim::NodeId,
        ranking: f64,
        supporting: Vec<SupportingCluster>,
    ) -> Option<Participant> {
        (ranking > 0.0 && !supporting.is_empty()).then_some(Participant {
            node,
            ranking,
            supporting_clusters: supporting,
        })
    }

    /// [`SelectionPolicy::select`] on an explicit pool handle: the
    /// leader's `O(N·K·d)` Eq. 2–4 kernel scores nodes on fixed chunks
    /// of the node list, each result written back to its node index, so
    /// the ranked list (and the subsequent deterministic sort) is
    /// bit-identical for any worker count. Telemetry counters inside
    /// [`QueryDriven::score_node`] are relaxed atomic adds, so their
    /// totals are scheduling-independent too.
    pub fn select_with_pool(&self, ctx: &SelectionContext<'_>, pool: &ThreadPool) -> Selection {
        let _span = telemetry::span!("qens_selection_select_nanos");
        let nodes = ctx.network.nodes();
        // Leader-side deterministic trace: the ranked list is
        // bit-identical for any pool, so this span (and the `ranked`
        // instant below) may record on the logical clock.
        let _trace_span =
            telemetry::trace::span_args("selection.select", &[("nodes", nodes.len() as u64)]);
        // Indexed map over the nodes; order restored (by construction)
        // before the ranking sort below.
        let scored_by_node: Vec<Option<Participant>> =
            pool.map_indexed(nodes, NODE_CHUNK, |_, node| {
                let (ranking, supporting) = self.score_node(node, ctx.query);
                self.participant_for(node.id(), ranking, supporting)
            });
        self.rank_and_cap(scored_by_node)
    }

    /// The leader-serial ranking phase: flattens the per-node scores (in
    /// node order), sorts best-ranked first and applies the cap. Shared
    /// with [`crate::cache`], which feeds it participants rebuilt from
    /// cached per-dimension overlaps — going through the identical sort
    /// and split is what makes cached selections bit-identical.
    pub(crate) fn rank_and_cap(&self, scored_by_node: Vec<Option<Participant>>) -> Selection {
        let mut scored: Vec<Participant> = scored_by_node.into_iter().flatten().collect();
        // Ranking phase (sort + cap split) — leader-serial, so the span
        // may record on the logical clock and the profiler can separate
        // scoring time from ranking time.
        let rank_span =
            telemetry::trace::span_args("selection.rank", &[("scored", scored.len() as u64)]);
        // Best-ranked first; node id breaks ties deterministically.
        scored.sort_by(|a, b| {
            b.ranking
                .partial_cmp(&a.ranking)
                .expect("rankings are finite")
                .then(a.node.cmp(&b.node))
        });
        // The cap splits the ranked list into participants and the
        // standby tail. The tail keeps the ranking order, so a
        // fault-tolerant federation promoting standby[0], standby[1], …
        // follows exactly the ranking the paper's Eq. 4 produced.
        let (participants, standby) = match self.cap {
            SelectionCap::TopL(l) => {
                let standby = scored.split_off(l.min(scored.len()));
                (scored, standby)
            }
            SelectionCap::Threshold(psi) => {
                let cut = scored.partition_point(|p| p.ranking >= psi);
                let standby = scored.split_off(cut);
                (scored, standby)
            }
            SelectionCap::AllPositive => (scored, Vec::new()),
        };
        rank_span.finish();
        telemetry::counter!("qens_selection_participants_total").add(participants.len() as u64);
        // Rankings live in [0, K]; record micro-units so the log-scale
        // buckets resolve the sub-1.0 mass the paper's Eq. 4 produces.
        let rank_hist = telemetry::histogram!("qens_selection_rank_micros");
        for p in &participants {
            rank_hist.record((p.ranking * 1e6) as u64);
        }
        telemetry::trace::instant(
            "selection.ranked",
            &[
                ("participants", participants.len() as u64),
                ("standby", standby.len() as u64),
            ],
        );
        Selection {
            participants,
            standby,
        }
    }
}

impl SelectionPolicy for QueryDriven {
    fn name(&self) -> &'static str {
        match self.rule {
            RankingRule::PaperEq4 => "query-driven",
            RankingRule::PotentialOnly => "query-driven (potential-only)",
            RankingRule::CountOnly => "query-driven (count-only)",
        }
    }

    fn select(&self, ctx: &SelectionContext<'_>) -> Selection {
        self.select_with_pool(ctx, par::global())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgesim::{EdgeNetwork, NodeId};
    use geom::Query;
    use linalg::Matrix;
    use mlkit::DenseDataset;

    /// Node whose joint data occupies `[x0, x0+20] x [x0, x0+20]`
    /// (y = x), with enough spread for 3 clusters.
    fn node_dataset(x0: f64) -> DenseDataset {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![x0 + i as f64 / 3.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        DenseDataset::new(Matrix::from_rows(&rows), y)
    }

    fn network() -> EdgeNetwork {
        let mut net = EdgeNetwork::from_datasets(vec![
            ("near".into(), node_dataset(0.0)),  // joint space ~[0,20]^2
            ("mid".into(), node_dataset(10.0)),  // ~[10,30]^2
            ("far".into(), node_dataset(100.0)), // ~[100,120]^2
        ]);
        net.quantize_all(3, 5);
        net
    }

    #[test]
    fn ranks_overlapping_nodes_above_distant_ones() {
        let net = network();
        let query = Query::from_boundary_vec(0, &[0.0, 15.0, 0.0, 15.0]);
        let sel = QueryDriven::top_l(3).select(&SelectionContext::new(&net, &query));
        assert!(!sel.is_empty());
        assert_eq!(
            sel.participants[0].node,
            NodeId(0),
            "nearest node must rank first"
        );
        // The far node cannot appear: zero overlap on every cluster.
        assert!(sel.participants.iter().all(|p| p.node != NodeId(2)));
        // Rankings are sorted descending.
        for w in sel.participants.windows(2) {
            assert!(w[0].ranking >= w[1].ranking);
        }
    }

    #[test]
    fn top_l_caps_the_participant_count() {
        let net = network();
        let query = Query::from_boundary_vec(0, &[0.0, 30.0, 0.0, 30.0]);
        let sel = QueryDriven::top_l(1).select(&SelectionContext::new(&net, &query));
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn top_l_keeps_the_trimmed_tail_as_ranked_standby() {
        let net = network();
        let query = Query::from_boundary_vec(0, &[0.0, 30.0, 0.0, 30.0]);
        let ctx = SelectionContext::new(&net, &query);
        let all = QueryDriven {
            cap: SelectionCap::AllPositive,
            ..QueryDriven::top_l(3)
        }
        .select(&ctx);
        assert!(all.standby.is_empty(), "AllPositive trims nothing");
        let capped = QueryDriven::top_l(1).select(&ctx);
        // participants ++ standby reproduces the uncapped ranked list.
        let mut rejoined = capped.participants.clone();
        rejoined.extend(capped.standby.iter().cloned());
        assert_eq!(rejoined, all.participants);
        // Standby stays ranking-sorted and below the selected cohort.
        for w in capped.standby.windows(2) {
            assert!(w[0].ranking >= w[1].ranking);
        }
        if let (Some(last_in), Some(first_out)) =
            (capped.participants.last(), capped.standby.first())
        {
            assert!(last_in.ranking >= first_out.ranking);
        }
        // Oversized l: everything selected, empty tail, no panic.
        let all_in = QueryDriven::top_l(64).select(&ctx);
        assert!(all_in.standby.is_empty());
    }

    #[test]
    fn threshold_cap_tail_holds_below_psi_positives() {
        let net = network();
        let query = Query::from_boundary_vec(0, &[0.0, 22.0, 0.0, 22.0]);
        let ctx = SelectionContext::new(&net, &query);
        let all = QueryDriven {
            epsilon: 0.05,
            cap: SelectionCap::AllPositive,
            rule: RankingRule::PaperEq4,
        }
        .select(&ctx);
        assert!(all.len() >= 2);
        let psi = all.participants[0].ranking * 0.99;
        let sel = QueryDriven::threshold(0.05, psi).select(&ctx);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel.standby.len(), all.len() - 1);
        for p in &sel.standby {
            assert!(p.ranking < psi && p.ranking > 0.0);
        }
    }

    #[test]
    fn threshold_cap_filters_by_psi() {
        let net = network();
        // Asymmetric query: mostly over node 0, partially over node 1.
        let query = Query::from_boundary_vec(0, &[0.0, 22.0, 0.0, 22.0]);
        let all = QueryDriven {
            epsilon: 0.05,
            cap: SelectionCap::AllPositive,
            rule: RankingRule::PaperEq4,
        }
        .select(&SelectionContext::new(&net, &query));
        assert!(all.len() >= 2);
        assert!(
            all.participants[0].ranking > all.participants[1].ranking,
            "query should rank node 0 strictly above node 1"
        );
        let max_rank = all.participants[0].ranking;
        let sel = QueryDriven::threshold(0.05, max_rank * 0.99)
            .select(&SelectionContext::new(&net, &query));
        assert_eq!(
            sel.len(),
            1,
            "psi just under the max ranking keeps only the best node"
        );
    }

    #[test]
    fn supporting_clusters_respect_epsilon_and_ordering() {
        let net = network();
        let query = Query::from_boundary_vec(0, &[0.0, 10.0, 0.0, 10.0]);
        let policy = QueryDriven {
            epsilon: 0.2,
            ..QueryDriven::top_l(3)
        };
        let sel = policy.select(&SelectionContext::new(&net, &query));
        for p in &sel.participants {
            assert!(!p.supporting_clusters.is_empty());
            for c in &p.supporting_clusters {
                assert!(c.overlap >= 0.2);
            }
            for w in p.supporting_clusters.windows(2) {
                assert!(w[0].overlap >= w[1].overlap);
            }
        }
    }

    #[test]
    fn disjoint_query_selects_nothing() {
        let net = network();
        let query = Query::from_boundary_vec(0, &[1000.0, 1100.0, 1000.0, 1100.0]);
        let sel = QueryDriven::top_l(3).select(&SelectionContext::new(&net, &query));
        assert!(sel.is_empty());
    }

    #[test]
    fn eq4_ranking_multiplies_potential_by_fraction() {
        let net = network();
        let query = Query::from_boundary_vec(0, &[0.0, 15.0, 0.0, 15.0]);
        let node = net.node(NodeId(0));
        let paper = QueryDriven::top_l(3);
        let (r_paper, sup) = paper.score_node(node, &query);
        let potential: f64 = sup.iter().map(|c| c.overlap).sum();
        let fraction = sup.len() as f64 / node.k() as f64;
        assert!((r_paper - potential * fraction).abs() < 1e-12);
        let (r_pot, _) = QueryDriven {
            rule: RankingRule::PotentialOnly,
            ..paper.clone()
        }
        .score_node(node, &query);
        assert!((r_pot - potential).abs() < 1e-12);
        let (r_cnt, _) = QueryDriven {
            rule: RankingRule::CountOnly,
            ..paper
        }
        .score_node(node, &query);
        assert!((r_cnt - fraction).abs() < 1e-12);
    }

    #[test]
    fn full_cover_query_gives_full_fraction() {
        let net = network();
        // A query covering everything: every cluster supports it. A wide
        // query makes each per-cluster overlap small (cluster-inside-query
        // Jaccard), so ε must be below cluster_span / query_span here.
        let query = Query::from_boundary_vec(0, &[-10.0, 130.0, -10.0, 130.0]);
        let policy = QueryDriven {
            epsilon: 0.01,
            ..QueryDriven::top_l(3)
        };
        let sel = policy.select(&SelectionContext::new(&net, &query));
        assert_eq!(sel.len(), 3);
        for p in &sel.participants {
            assert_eq!(p.supporting_clusters.len(), net.node(p.node).k());
        }
    }

    #[test]
    fn selection_is_deterministic() {
        let net = network();
        let query = Query::from_boundary_vec(0, &[0.0, 25.0, 0.0, 25.0]);
        let a = QueryDriven::top_l(2).select(&SelectionContext::new(&net, &query));
        let b = QueryDriven::top_l(2).select(&SelectionContext::new(&net, &query));
        assert_eq!(a, b);
    }

    #[test]
    fn selection_is_bit_identical_across_pool_sizes() {
        // More nodes than NODE_CHUNK so the pooled path really fans out.
        let mut datasets = Vec::new();
        for i in 0..20 {
            datasets.push((format!("n{i}"), node_dataset(i as f64 * 1.5)));
        }
        let mut net = EdgeNetwork::from_datasets(datasets);
        net.quantize_all(3, 5);
        let query = Query::from_boundary_vec(0, &[0.0, 30.0, 0.0, 30.0]);
        let policy = QueryDriven {
            cap: SelectionCap::AllPositive,
            ..QueryDriven::top_l(20)
        };
        let ctx = SelectionContext::new(&net, &query);
        let serial = policy.select_with_pool(&ctx, &par::ThreadPool::new(1));
        assert!(serial.len() >= 2, "query must rank several nodes");
        for threads in [2, 4, 9] {
            let pooled = policy.select_with_pool(&ctx, &par::ThreadPool::new(threads));
            assert_eq!(serial, pooled, "selection diverged at {threads} threads");
        }
    }

    /// Regression (scoring an unquantized node): the `is_quantized`
    /// check must run before any summary access so the caller always
    /// gets the actionable "call quantize_all first" message.
    #[test]
    #[should_panic(expected = "call EdgeNetwork::quantize_all first")]
    fn unquantized_node_scoring_panics_with_guidance() {
        // No quantize_all: the node has no summaries.
        let net = EdgeNetwork::from_datasets(vec![("raw".into(), node_dataset(0.0))]);
        let query = Query::from_boundary_vec(0, &[0.0, 15.0, 0.0, 15.0]);
        QueryDriven::top_l(1).score_node(&net.nodes()[0], &query);
    }

    #[test]
    #[should_panic(expected = "query dim")]
    fn wrong_query_dim_rejected() {
        let net = network();
        let query = Query::from_boundary_vec(0, &[0.0, 1.0]);
        SelectionContext::new(&net, &query);
    }
}
