//! The selection mechanisms the paper compares against (§V-C).

use linalg::rng as lrng;
use linalg::rng::SliceRandom;
use mlkit::{Model, ModelKind, Regressor, TrainConfig};

use crate::policy::{Participant, Selection, SelectionContext, SelectionOverhead, SelectionPolicy};

/// Random selection (Ye et al. \[6\]): ℓ nodes uniformly at random, each
/// training on its whole local dataset.
///
/// The draw is deterministic in `(seed, query id)` so repeated runs of a
/// workload reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RandomSelection {
    /// Number of nodes to draw.
    pub l: usize,
    /// Base seed (mixed with the query id per draw).
    pub seed: u64,
}

impl SelectionPolicy for RandomSelection {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(&self, ctx: &SelectionContext<'_>) -> Selection {
        let mut ids: Vec<usize> = (0..ctx.network.len()).collect();
        let mut rng = lrng::rng_for(self.seed, ctx.query.id());
        ids.shuffle(&mut rng);
        ids.truncate(self.l.min(ctx.network.len()));
        ids.sort_unstable(); // deterministic participant order
        Selection {
            participants: ids
                .into_iter()
                .map(|i| Participant {
                    node: ctx.network.nodes()[i].id(),
                    ranking: 1.0,
                    supporting_clusters: Vec::new(),
                })
                .collect(),
            // Random selection has no ranking, hence no principled
            // replacement order: no standby tail.
            standby: Vec::new(),
        }
    }
}

/// All-node selection: every node participates with all its data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AllNodes;

impl SelectionPolicy for AllNodes {
    fn name(&self) -> &'static str {
        "all-nodes"
    }

    fn select(&self, ctx: &SelectionContext<'_>) -> Selection {
        Selection {
            participants: ctx
                .network
                .nodes()
                .iter()
                .map(|n| Participant {
                    node: n.id(),
                    ranking: 1.0,
                    supporting_clusters: Vec::new(),
                })
                .collect(),
            // Everyone already participates; nothing is left to promote.
            standby: Vec::new(),
        }
    }
}

/// Game-theory selection (Hammoud et al. \[7\]).
///
/// The leader (node index `leader`) first trains an independent local
/// model on its own data; every other node then evaluates that model
/// against its local data and reports the loss. The leader selects the ℓ
/// nodes where the model performed *worst* — i.e. whose data differs most
/// from what the model has already seen — to make the global model more
/// general. This is the "needs a training round before selecting" cost
/// the paper criticises (it shows up in the Fig. 8 timing).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GameTheory {
    /// Index of the leader node in the network.
    pub leader: usize,
    /// Number of nodes to select.
    pub l: usize,
    /// Architecture of the probe model.
    pub probe_model: ModelKind,
    /// Training schedule of the probe model (kept short; the probe only
    /// has to capture the leader's data pattern).
    pub probe_config: TrainConfig,
}

impl GameTheory {
    /// The configuration used in the evaluation: linear probe, 30 epochs.
    pub fn paper_default(leader: usize, l: usize, seed: u64) -> Self {
        Self {
            leader,
            l,
            probe_model: ModelKind::Linear,
            probe_config: TrainConfig::paper_lr(seed).with_epochs(30),
        }
    }

    /// Trains the leader's probe model and returns each node's loss under
    /// it, indexed by node position. Exposed for tests and the repro
    /// binary (Table II uses these probe losses directly).
    ///
    /// Data is min-max scaled by the global-space bounds before training
    /// and evaluation (see [`edgesim::SpaceScaler`]) so that the probe's
    /// gradient descent is stable and losses reported by different nodes
    /// are comparable; the returned losses are in scaled units.
    pub fn probe_losses(&self, ctx: &SelectionContext<'_>) -> Vec<f64> {
        let scaler = edgesim::SpaceScaler::from_space(&ctx.network.global_space());
        let leader_node = &ctx.network.nodes()[self.leader];
        let leader_data = scaler.transform_dataset(leader_node.data());
        let mut probe: Model = self
            .probe_model
            .build(leader_data.dim(), self.probe_config.seed);
        mlkit::train(&mut probe, &leader_data, &self.probe_config);
        ctx.network
            .nodes()
            .iter()
            .map(|n| probe.evaluate(&scaler.transform_dataset(n.data()), self.probe_config.loss))
            .collect()
    }
}

impl SelectionPolicy for GameTheory {
    fn name(&self) -> &'static str {
        "game-theory"
    }

    fn select(&self, ctx: &SelectionContext<'_>) -> Selection {
        assert!(self.leader < ctx.network.len(), "leader index out of range");
        let losses = self.probe_losses(ctx);
        // Rank non-leader nodes by descending probe loss (most different
        // data first) and keep ℓ of them.
        let mut order: Vec<usize> = (0..ctx.network.len())
            .filter(|&i| i != self.leader)
            .collect();
        order.sort_by(|&a, &b| {
            losses[b]
                .partial_cmp(&losses[a])
                .expect("losses are finite")
                .then(a.cmp(&b))
        });
        order.truncate(self.l.min(order.len()));
        Selection {
            participants: order
                .into_iter()
                .map(|i| Participant {
                    node: ctx.network.nodes()[i].id(),
                    ranking: 1.0,
                    supporting_clusters: Vec::new(),
                })
                .collect(),
            // The paper's game-theory baseline re-runs its probe per
            // query; it keeps no ranked tail to promote from.
            standby: Vec::new(),
        }
    }

    fn overhead(&self, ctx: &SelectionContext<'_>) -> SelectionOverhead {
        // The probe is trained on the leader (≈ len × epochs visits after
        // the validation split), broadcast to every node, evaluated there
        // (one visit per sample) and the losses are reported back.
        let leader = &ctx.network.nodes()[self.leader];
        let train_visits = (leader.len() as f64
            * (1.0 - self.probe_config.validation_split)
            * self.probe_config.epochs as f64) as usize;
        let probe_weights = self.probe_model.build(leader.data().dim(), 0).num_weights();
        let mut per_node_visits = vec![(leader.id(), train_visits)];
        for n in ctx.network.nodes() {
            if n.id() != leader.id() {
                per_node_visits.push((n.id(), n.len()));
            }
        }
        let bytes = ctx.network.len() * (probe_weights * 8 + 8); // model down, loss back
        SelectionOverhead {
            per_node_visits,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgesim::{EdgeNetwork, NodeId};
    use geom::Query;
    use linalg::Matrix;
    use mlkit::DenseDataset;

    /// y = slope * x over x in [x0, x0+20).
    fn node_dataset(x0: f64, slope: f64) -> DenseDataset {
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![x0 + i as f64 / 4.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| slope * r[0]).collect();
        DenseDataset::new(Matrix::from_rows(&rows), y)
    }

    fn network() -> EdgeNetwork {
        EdgeNetwork::from_datasets(vec![
            ("leader".into(), node_dataset(0.0, 1.0)),
            ("same".into(), node_dataset(0.0, 1.0)),
            ("different".into(), node_dataset(0.0, -5.0)),
        ])
    }

    fn any_query() -> Query {
        Query::from_boundary_vec(7, &[0.0, 10.0, 0.0, 10.0])
    }

    #[test]
    fn random_selection_is_deterministic_per_query() {
        let net = network();
        let q = any_query();
        let ctx = SelectionContext::new(&net, &q);
        let pol = RandomSelection { l: 2, seed: 3 };
        assert_eq!(pol.select(&ctx), pol.select(&ctx));
        let sel = pol.select(&ctx);
        assert_eq!(sel.len(), 2);
        for p in &sel.participants {
            assert!(
                p.supporting_clusters.is_empty(),
                "random baseline uses full data"
            );
        }
    }

    #[test]
    fn random_selection_varies_across_queries() {
        let net = network();
        let pol = RandomSelection { l: 1, seed: 3 };
        let mut seen = std::collections::HashSet::new();
        for qid in 0..20u64 {
            let q = Query::from_boundary_vec(qid, &[0.0, 10.0, 0.0, 10.0]);
            let sel = pol.select(&SelectionContext::new(&net, &q));
            seen.insert(sel.participants[0].node);
        }
        assert!(seen.len() > 1, "draw never varied across 20 queries");
    }

    #[test]
    fn random_l_is_clamped_to_population() {
        let net = network();
        let q = any_query();
        let sel = RandomSelection { l: 10, seed: 0 }.select(&SelectionContext::new(&net, &q));
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn all_nodes_selects_everyone_uniformly() {
        let net = network();
        let q = any_query();
        let sel = AllNodes.select(&SelectionContext::new(&net, &q));
        assert_eq!(sel.len(), 3);
        assert_eq!(sel.lambda_weights(), vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn game_theory_prefers_the_most_different_node() {
        let net = network();
        let q = any_query();
        let ctx = SelectionContext::new(&net, &q);
        let gt = GameTheory::paper_default(0, 1, 11);
        let losses = gt.probe_losses(&ctx);
        assert!(
            losses[2] > losses[1] * 10.0 + 1e-6,
            "probe losses {losses:?} do not separate nodes"
        );
        assert!(
            losses.iter().all(|l| l.is_finite()),
            "probe diverged: {losses:?}"
        );
        let sel = gt.select(&ctx);
        assert_eq!(sel.len(), 1);
        assert_eq!(
            sel.participants[0].node,
            NodeId(2),
            "GT must pick the dissimilar node"
        );
    }

    #[test]
    fn game_theory_never_selects_the_leader() {
        let net = network();
        let q = any_query();
        let sel = GameTheory::paper_default(0, 3, 1).select(&SelectionContext::new(&net, &q));
        assert_eq!(sel.len(), 2);
        assert!(sel.participants.iter().all(|p| p.node != NodeId(0)));
    }
}
