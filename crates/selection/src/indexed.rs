//! Sublinear candidate generation for the query-driven policy
//! (ROADMAP item 1).
//!
//! The plain [`QueryDriven`] kernel scores every node on every query:
//! `O(N·K·d)` per selection, which a million-node fleet turns into
//! hundreds of milliseconds of pure arithmetic. This module splits
//! selection into an explicit **candidate-generation** stage — a
//! [`geom::index::SpatialIndex`] over per-node summary hulls
//! ([`edgesim::EdgeNode::summary_bounds`]) with a two-level
//! domain-then-node hierarchy — feeding the *unchanged*
//! `score_node`/`rank_and_cap` scoring stage over the survivors only.
//!
//! # Why the results are bit-identical
//!
//! Eq. 2 overlap is *additive* over dimensions (the mean of per-axis
//! ratios), so the index prunes with **per-axis union** semantics: a
//! node is a candidate iff at least one dimension of its summary hull
//! intersects the query's interval in that dimension. For every
//! non-candidate the hull — and therefore every cluster rectangle under
//! it — is disjoint from the query in *every* dimension, and
//! [`geom::Interval::overlap_ratio`] returns exactly `0.0` for every
//! disjoint (or touching-but-degenerate) pair. With `ε > 0` each such
//! cluster fails `h_ik >= ε`, leaving the node with zero supporting
//! clusters and ranking `0.0` — precisely the nodes
//! `QueryDriven::participant_for` maps to `None` in a full scan. The
//! candidates themselves go through the identical scoring kernel in
//! ascending node order on the same fixed-chunk pool schedule, and the
//! final sort is a total order (ranking desc, node id asc), so the
//! selection — participants, rankings, supporting clusters and standby
//! tail — matches the scan bit for bit at any thread count.
//!
//! `ε <= 0` (e.g. ablations ranking by cluster-count only) breaks the
//! argument — a zero-overlap cluster then *satisfies* `h >= ε` — so
//! [`IndexedQueryDriven`] detects it and falls back to the full scan.
//!
//! # Staleness
//!
//! The built index snapshots every node's
//! [`edgesim::EdgeNode::summary_epoch`] and the network's
//! [`edgesim::EdgeNetwork::membership_epoch`]; any drift on the next
//! probe triggers a deterministic bulk rebuild (counted in
//! `qens_index_rebuilds_total`, timed by the `qens_index_build_nanos`
//! histogram).

use std::sync::Mutex;

use geom::index::{GridConfig, SpatialIndex, SpatialIndexBuilder};
use par::ThreadPool;

use crate::policy::{Selection, SelectionContext, SelectionOverhead, SelectionPolicy};
use crate::query_driven::{QueryDriven, NODE_CHUNK};

/// Domains per pool task during the per-node verify stage. Fixed
/// (worker-count independent) like [`NODE_CHUNK`], so the flattened
/// candidate list is identical for any pool.
pub(crate) const DOMAIN_CHUNK: usize = 4;

/// Monotonic index counters, mirrored into the global telemetry registry
/// as `qens_index_*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IndexStats {
    /// Bulk (re)builds, including the initial one.
    pub rebuilds: u64,
    /// Queries that went through the index.
    pub probes: u64,
    /// Grid cells visited across all probes.
    pub cells_probed: u64,
    /// Domains eliminated before any per-node work.
    pub domains_pruned: u64,
    /// Candidate nodes handed to the scoring stage.
    pub candidates: u64,
    /// Selections that bypassed the index (`ε <= 0` full-scan safety).
    pub fallbacks: u64,
}

/// The index plus the epochs it was built against.
#[derive(Debug)]
struct BuiltIndex {
    index: SpatialIndex,
    /// Per-node summary epochs at build time, in node order.
    epochs: Vec<u64>,
    /// Network membership epoch at build time.
    membership: u64,
    /// Last [`edgesim::EdgeNetwork::mutation_epoch`] this build was
    /// verified against. While the network's counter still matches, no
    /// `&mut EdgeNode` was handed out since, so the `O(N)` per-node
    /// epoch walk below is provably redundant — at fleet scale that
    /// walk streams the whole node vector and would dominate the
    /// probe itself.
    mutation: u64,
}

#[derive(Debug, Default)]
struct IndexState {
    built: Option<BuiltIndex>,
    stats: IndexStats,
}

/// A lazily-(re)built spatial index over one network's summary hulls.
///
/// Shared by [`IndexedQueryDriven`] and the selection cache's indexed
/// miss path ([`crate::cache::CachedQueryDriven::with_index`]); one
/// instance indexes one network, with staleness detected through the
/// summary/membership epochs (feeding contexts over unrelated networks
/// of the same shape is the same caveat the selection cache documents).
#[derive(Debug)]
pub struct SelectionIndex {
    config: GridConfig,
    state: Mutex<IndexState>,
}

impl SelectionIndex {
    /// An empty index that bulk-builds on first use.
    pub fn new(config: GridConfig) -> Self {
        Self {
            config,
            state: Mutex::new(IndexState::default()),
        }
    }

    /// [`SelectionIndex::new`] with [`GridConfig::default`].
    pub fn with_defaults() -> Self {
        Self::new(GridConfig::default())
    }

    /// A snapshot of the index counters.
    pub fn stats(&self) -> IndexStats {
        self.state.lock().expect("index lock poisoned").stats
    }

    /// Candidate node ids (ascending) for a query: every node whose
    /// summary hull intersects the query in at least one dimension.
    /// Rebuilds first when any epoch drifted; the per-domain verify fans
    /// out over `pool` on fixed chunks, so the list is bit-identical at
    /// any worker count.
    pub(crate) fn candidates(
        &self,
        network: &edgesim::EdgeNetwork,
        query: &geom::Query,
        pool: &ThreadPool,
    ) -> Vec<u32> {
        let nodes = network.nodes();
        let mut state = self.state.lock().expect("index lock poisoned");
        let stale = match &mut state.built {
            None => true,
            Some(b) if b.membership != network.membership_epoch() => true,
            // O(1) fast path: no `&mut EdgeNode` was handed out since
            // the last verification, so no summary epoch can have moved.
            Some(b) if b.mutation == network.mutation_epoch() => false,
            Some(b) => {
                let drifted = b.epochs.len() != nodes.len()
                    || b.epochs
                        .iter()
                        .zip(nodes)
                        .any(|(e, n)| *e != n.summary_epoch());
                if !drifted {
                    // A `&mut` went out but no summary actually changed:
                    // re-arm the fast path instead of re-walking the
                    // fleet on every subsequent probe.
                    b.mutation = network.mutation_epoch();
                }
                drifted
            }
        };
        if stale {
            let span = telemetry::span!("qens_index_build_nanos");
            let mut builder = SpatialIndexBuilder::with_capacity(query.dim(), nodes.len());
            for node in nodes {
                // summary_bounds carries the same "call quantize_all
                // first" guidance as direct scoring, so the indexed path
                // cannot mask an unquantised node.
                builder.push(&node.summary_bounds());
            }
            let index = builder.build(self.config);
            state.built = Some(BuiltIndex {
                index,
                epochs: nodes.iter().map(|n| n.summary_epoch()).collect(),
                membership: network.membership_epoch(),
                mutation: network.mutation_epoch(),
            });
            state.stats.rebuilds += 1;
            telemetry::counter!("qens_index_rebuilds_total").add(1);
            telemetry::trace::instant("selection.index_rebuild", &[("nodes", nodes.len() as u64)]);
            drop(span);
        }
        let built = state.built.as_ref().expect("built above");
        let probe = built.index.probe(query.region());
        let mut candidates: Vec<u32> = pool
            .map_indexed(&probe.domains, DOMAIN_CHUNK, |_, &domain| {
                let mut out = Vec::new();
                built
                    .index
                    .verify_domain(domain, &probe.q_lo, &probe.q_hi, &mut out);
                out
            })
            .into_iter()
            .flatten()
            .collect();
        // Domains hold Morton-ordered slots; scoring's fixed-chunk
        // schedule (and therefore bit-identity with the scan) needs
        // ascending node ids.
        candidates.sort_unstable();
        state.stats.probes += 1;
        state.stats.cells_probed += probe.cells_probed;
        state.stats.domains_pruned += probe.domains_pruned;
        state.stats.candidates += candidates.len() as u64;
        telemetry::counter!("qens_index_cells_probed_total").add(probe.cells_probed);
        telemetry::counter!("qens_index_domains_pruned_total").add(probe.domains_pruned);
        telemetry::counter!("qens_index_candidates_total").add(candidates.len() as u64);
        telemetry::trace::instant(
            "selection.index_probe",
            &[
                ("cells", probe.cells_probed),
                ("domains_pruned", probe.domains_pruned),
                ("candidates", candidates.len() as u64),
            ],
        );
        candidates
    }

    /// Records an `ε <= 0` full-scan fallback.
    pub(crate) fn record_fallback(&self) {
        self.state
            .lock()
            .expect("index lock poisoned")
            .stats
            .fallbacks += 1;
        telemetry::counter!("qens_index_fallbacks_total").add(1);
    }
}

/// [`QueryDriven`] behind spatial-index candidate generation: identical
/// selections — participants, rankings, supporting clusters, standby —
/// at a fraction of the scoring work on large fleets. See the module
/// docs for the bit-identity argument.
#[derive(Debug)]
pub struct IndexedQueryDriven {
    inner: QueryDriven,
    index: SelectionIndex,
}

impl IndexedQueryDriven {
    /// Wraps a policy with an index under the given grid configuration.
    pub fn new(inner: QueryDriven, config: GridConfig) -> Self {
        Self {
            inner,
            index: SelectionIndex::new(config),
        }
    }

    /// Wraps with [`GridConfig::default`].
    pub fn with_defaults(inner: QueryDriven) -> Self {
        Self::new(inner, GridConfig::default())
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &QueryDriven {
        &self.inner
    }

    /// A snapshot of the index counters.
    pub fn index_stats(&self) -> IndexStats {
        self.index.stats()
    }

    /// [`SelectionPolicy::select`] on an explicit pool handle: candidate
    /// generation through the index, then the unchanged scoring kernel
    /// over the survivors in ascending node order.
    pub fn select_with_pool(&self, ctx: &SelectionContext<'_>, pool: &ThreadPool) -> Selection {
        if self.inner.epsilon <= 0.0 {
            // With ε <= 0 a zero-overlap cluster still passes the
            // `h >= ε` filter, so pruned nodes could legitimately be
            // participants: index pruning would change the result.
            // Delegate wholesale (spans/traces included) to the scan.
            self.index.record_fallback();
            return self.inner.select_with_pool(ctx, pool);
        }
        let _span = telemetry::span!("qens_selection_select_nanos");
        let nodes = ctx.network.nodes();
        let _trace_span = telemetry::trace::span_args(
            "selection.select_indexed",
            &[("nodes", nodes.len() as u64)],
        );
        let candidates = self.index.candidates(ctx.network, ctx.query, pool);
        let scored: Vec<_> = pool.map_indexed(&candidates, NODE_CHUNK, |_, &i| {
            let node = &nodes[i as usize];
            let (ranking, supporting) = self.inner.score_node(node, ctx.query);
            self.inner.participant_for(node.id(), ranking, supporting)
        });
        self.inner.rank_and_cap(scored)
    }
}

impl SelectionPolicy for IndexedQueryDriven {
    /// Same display name as the wrapped policy: the index changes *how*
    /// a selection is computed, never *what* is selected, so result
    /// tables must not fork on it.
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn select(&self, ctx: &SelectionContext<'_>) -> Selection {
        self.select_with_pool(ctx, par::global())
    }

    fn overhead(&self, ctx: &SelectionContext<'_>) -> SelectionOverhead {
        self.inner.overhead(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_driven::{RankingRule, SelectionCap};
    use edgesim::{EdgeNetwork, NodeId};
    use geom::Query;
    use linalg::Matrix;
    use mlkit::DenseDataset;

    fn node_dataset(x0: f64) -> DenseDataset {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![x0 + i as f64 / 3.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        DenseDataset::new(Matrix::from_rows(&rows), y)
    }

    fn network(n: usize) -> EdgeNetwork {
        let datasets = (0..n)
            .map(|i| (format!("n{i}"), node_dataset(i as f64 * 12.0)))
            .collect();
        let mut net = EdgeNetwork::from_datasets(datasets);
        net.quantize_all(3, 5);
        net
    }

    fn assert_bitwise_eq(a: &Selection, b: &Selection) {
        assert_eq!(a, b);
        for (x, y) in a
            .participants
            .iter()
            .chain(&a.standby)
            .zip(b.participants.iter().chain(&b.standby))
        {
            assert_eq!(x.ranking.to_bits(), y.ranking.to_bits());
            for (cx, cy) in x.supporting_clusters.iter().zip(&y.supporting_clusters) {
                assert_eq!(cx.overlap.to_bits(), cy.overlap.to_bits());
            }
        }
    }

    #[test]
    fn indexed_matches_scan_bitwise_over_sliding_queries() {
        let net = network(24);
        let plain = QueryDriven {
            cap: SelectionCap::AllPositive,
            ..QueryDriven::top_l(24)
        };
        let indexed = IndexedQueryDriven::with_defaults(plain.clone());
        for i in 0..40u64 {
            let off = i as f64 * 7.0;
            let q = Query::from_boundary_vec(i, &[off, off + 15.0, off, off + 15.0]);
            let ctx = SelectionContext::new(&net, &q);
            assert_bitwise_eq(&plain.select(&ctx), &indexed.select(&ctx));
        }
        let stats = indexed.index_stats();
        assert_eq!(stats.rebuilds, 1, "one bulk build serves every query");
        assert_eq!(stats.probes, 40);
        assert!(stats.domains_pruned > 0 || net.len() <= 64);
    }

    #[test]
    fn summary_epoch_drift_triggers_rebuild() {
        let mut net = network(6);
        let plain = QueryDriven::top_l(3);
        let indexed = IndexedQueryDriven::with_defaults(plain.clone());
        let q = Query::from_boundary_vec(0, &[0.0, 30.0, 0.0, 30.0]);
        indexed.select(&SelectionContext::new(&net, &q));
        assert_eq!(indexed.index_stats().rebuilds, 1);
        // Re-quantising a node moves its summary epoch.
        net.node_mut(NodeId(2)).quantize(2, 99);
        let ctx = SelectionContext::new(&net, &q);
        assert_bitwise_eq(&plain.select(&ctx), &indexed.select(&ctx));
        assert_eq!(indexed.index_stats().rebuilds, 2);
        // Unchanged network: no further rebuilds.
        indexed.select(&ctx);
        assert_eq!(indexed.index_stats().rebuilds, 2);
    }

    #[test]
    fn membership_growth_triggers_rebuild() {
        let mut net = network(5);
        let plain = QueryDriven::top_l(4);
        let indexed = IndexedQueryDriven::with_defaults(plain.clone());
        let q = Query::from_boundary_vec(0, &[0.0, 45.0, 0.0, 45.0]);
        indexed.select(&SelectionContext::new(&net, &q));
        let id = net.add_node("late", node_dataset(18.0), 1.0);
        net.node_mut(id).quantize(3, 5);
        let ctx = SelectionContext::new(&net, &q);
        assert_bitwise_eq(&plain.select(&ctx), &indexed.select(&ctx));
        assert_eq!(indexed.index_stats().rebuilds, 2);
    }

    #[test]
    fn nonpositive_epsilon_falls_back_to_scan() {
        let net = network(8);
        let plain = QueryDriven {
            epsilon: 0.0,
            cap: SelectionCap::TopL(4),
            rule: RankingRule::CountOnly,
        };
        let indexed = IndexedQueryDriven::with_defaults(plain.clone());
        // Distant query: with ε = 0 every cluster "supports" it at zero
        // overlap under CountOnly — pruning would drop real behaviour.
        let q = Query::from_boundary_vec(0, &[2000.0, 2010.0, 2000.0, 2010.0]);
        let ctx = SelectionContext::new(&net, &q);
        assert_bitwise_eq(&plain.select(&ctx), &indexed.select(&ctx));
        let stats = indexed.index_stats();
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.rebuilds, 0, "fallback never builds the index");
    }

    #[test]
    fn name_does_not_fork_on_indexing() {
        let indexed = IndexedQueryDriven::with_defaults(QueryDriven::top_l(3));
        assert_eq!(indexed.name(), "query-driven");
    }
}
