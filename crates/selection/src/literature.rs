//! Further selection mechanisms from the paper's related-work survey
//! (§II): data-centric scoring and fairness-aware stochastic selection.
//!
//! These are not in the paper's own evaluation (which compares against
//! Random \[6\] and GameTheory \[7\]) but §II discusses them as the
//! state of the art; implementing them makes the comparison suite
//! complete and gives the extended benches more baselines.

use std::sync::Mutex;

use linalg::rng::Rng;
use linalg::{rng as lrng, stats};

use crate::policy::{Participant, Selection, SelectionContext, SelectionPolicy};

/// Data-centric client selection in the style of Saha et al. \[8\]: each
/// node gets a composite score from a *data quality* term (sample count
/// and label diversity), a *computation* term (capacity `c_k`) and a
/// *communication* term (inverse transfer cost); the top-ℓ scores are
/// selected. Nothing about the query enters the score — that is exactly
/// the gap the paper's mechanism fills.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DataCentric {
    /// Number of nodes to select.
    pub l: usize,
    /// Weight of the data-quality term.
    pub w_data: f64,
    /// Weight of the computation term.
    pub w_compute: f64,
    /// Weight of the communication term.
    pub w_comm: f64,
}

impl DataCentric {
    /// The usual equal-weights configuration.
    pub fn equal_weights(l: usize) -> Self {
        Self {
            l,
            w_data: 1.0 / 3.0,
            w_compute: 1.0 / 3.0,
            w_comm: 1.0 / 3.0,
        }
    }

    /// Per-node composite scores, indexed by node position.
    pub fn scores(&self, ctx: &SelectionContext<'_>) -> Vec<f64> {
        let nodes = ctx.network.nodes();
        // Raw terms.
        let data_q: Vec<f64> = nodes
            .iter()
            .map(|n| n.len() as f64 * (1.0 + stats::std_dev(n.data().y()).ln_1p()))
            .collect();
        let compute: Vec<f64> = nodes.iter().map(|n| n.capacity()).collect();
        let comm: Vec<f64> = nodes
            .iter()
            .map(|n| 1.0 / n.link().transfer_seconds(1024).max(1e-9))
            .collect();
        let norm = |xs: &[f64]| -> Vec<f64> {
            let max = xs.iter().cloned().fold(0.0_f64, f64::max).max(1e-12);
            xs.iter().map(|x| x / max).collect()
        };
        let (dq, cp, cm) = (norm(&data_q), norm(&compute), norm(&comm));
        (0..nodes.len())
            .map(|i| self.w_data * dq[i] + self.w_compute * cp[i] + self.w_comm * cm[i])
            .collect()
    }
}

impl SelectionPolicy for DataCentric {
    fn name(&self) -> &'static str {
        "data-centric"
    }

    fn select(&self, ctx: &SelectionContext<'_>) -> Selection {
        let scores = self.scores(ctx);
        let mut order: Vec<usize> = (0..ctx.network.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .expect("scores are finite")
                .then(a.cmp(&b))
        });
        order.truncate(self.l.min(order.len()));
        Selection {
            participants: order
                .into_iter()
                .map(|i| Participant {
                    node: ctx.network.nodes()[i].id(),
                    ranking: scores[i].max(1e-12),
                    supporting_clusters: Vec::new(),
                })
                .collect(),
            standby: Vec::new(),
        }
    }
}

/// Fairness-aware stochastic selection in the style of Huang et al.
/// \[12\]: every node keeps a draw weight inversely related to how often
/// it has already been selected, so participation evens out over the
/// query stream. The per-query draw is deterministic in
/// `(seed, query id)`; the selection history lives behind a mutex so the
/// policy object can be shared across a stream run.
#[derive(Debug)]
pub struct FairStochastic {
    /// Number of nodes to draw per query.
    pub l: usize,
    /// Draw seed.
    pub seed: u64,
    /// Times each node has been selected so far (lazily sized).
    history: Mutex<Vec<u64>>,
}

impl FairStochastic {
    /// A fresh policy with empty history.
    pub fn new(l: usize, seed: u64) -> Self {
        Self {
            l,
            seed,
            history: Mutex::new(Vec::new()),
        }
    }

    /// How often each node has been selected so far.
    pub fn selection_counts(&self) -> Vec<u64> {
        self.history.lock().unwrap().clone()
    }
}

impl SelectionPolicy for FairStochastic {
    fn name(&self) -> &'static str {
        "fair-stochastic"
    }

    fn select(&self, ctx: &SelectionContext<'_>) -> Selection {
        let n = ctx.network.len();
        let mut history = self.history.lock().unwrap();
        if history.len() != n {
            *history = vec![0; n];
        }
        // Weight ∝ 1 / (1 + times-selected): a weighted draw without
        // replacement via repeated roulette selection.
        let mut rng = lrng::rng_for(self.seed, ctx.query.id() ^ 0xFA1);
        let mut weights: Vec<f64> = history.iter().map(|&c| 1.0 / (1.0 + c as f64)).collect();
        let mut chosen: Vec<usize> = Vec::with_capacity(self.l.min(n));
        for _ in 0..self.l.min(n) {
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                break;
            }
            let mut target = rng.gen::<f64>() * total;
            let mut pick = weights.len() - 1;
            for (i, &w) in weights.iter().enumerate() {
                target -= w;
                if target <= 0.0 && w > 0.0 {
                    pick = i;
                    break;
                }
            }
            chosen.push(pick);
            weights[pick] = 0.0;
        }
        chosen.sort_unstable();
        for &i in &chosen {
            history[i] += 1;
        }
        Selection {
            participants: chosen
                .into_iter()
                .map(|i| Participant {
                    node: ctx.network.nodes()[i].id(),
                    ranking: 1.0,
                    supporting_clusters: Vec::new(),
                })
                .collect(),
            standby: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgesim::EdgeNetwork;
    use geom::Query;
    use linalg::Matrix;
    use mlkit::DenseDataset;

    fn dataset(n: usize, spread: f64) -> DenseDataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..n).map(|i| spread * i as f64).collect();
        DenseDataset::new(Matrix::from_rows(&rows), y)
    }

    fn network() -> EdgeNetwork {
        EdgeNetwork::from_datasets(vec![
            ("big-diverse".into(), dataset(200, 3.0)),
            ("small".into(), dataset(20, 3.0)),
            ("big-flat".into(), dataset(200, 0.0)),
            ("medium".into(), dataset(80, 2.0)),
        ])
    }

    fn any_query() -> Query {
        Query::from_boundary_vec(0, &[0.0, 10.0, 0.0, 10.0])
    }

    #[test]
    fn data_centric_prefers_large_diverse_nodes() {
        let net = network();
        let q = any_query();
        let ctx = SelectionContext::new(&net, &q);
        let pol = DataCentric::equal_weights(2);
        let scores = pol.scores(&ctx);
        assert!(
            scores[0] > scores[1],
            "large node must outscore small: {scores:?}"
        );
        assert!(
            scores[0] > scores[2],
            "diverse labels must outscore flat: {scores:?}"
        );
        let sel = pol.select(&ctx);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.participants[0].node.0, 0);
    }

    #[test]
    fn data_centric_is_query_blind() {
        let net = network();
        let q1 = any_query();
        let q2 = Query::from_boundary_vec(9, &[500.0, 600.0, 500.0, 600.0]);
        let pol = DataCentric::equal_weights(2);
        let a = pol.select(&SelectionContext::new(&net, &q1));
        let b = pol.select(&SelectionContext::new(&net, &q2));
        let ids = |s: &Selection| s.participants.iter().map(|p| p.node.0).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b), "data-centric must ignore the query");
    }

    #[test]
    fn fair_stochastic_evens_out_participation() {
        let net = network();
        let pol = FairStochastic::new(1, 12);
        for qid in 0..40u64 {
            let q = Query::from_boundary_vec(qid, &[0.0, 10.0, 0.0, 10.0]);
            let sel = pol.select(&SelectionContext::new(&net, &q));
            assert_eq!(sel.len(), 1);
        }
        let counts = pol.selection_counts();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max - min <= 2, "fairness violated: {counts:?}");
        assert_eq!(counts.iter().sum::<u64>(), 40);
    }

    #[test]
    fn fair_stochastic_never_duplicates_within_a_query() {
        let net = network();
        let pol = FairStochastic::new(3, 3);
        let q = any_query();
        let sel = pol.select(&SelectionContext::new(&net, &q));
        let mut ids: Vec<usize> = sel.participants.iter().map(|p| p.node.0).collect();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
        assert_eq!(before, 3);
    }

    #[test]
    fn fair_stochastic_l_clamped_to_population() {
        let net = network();
        let pol = FairStochastic::new(10, 3);
        let sel = pol.select(&SelectionContext::new(&net, &any_query()));
        assert_eq!(sel.len(), 4);
    }
}
