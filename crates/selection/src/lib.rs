//! Node-selection policies for query-driven distributed learning.
//!
//! Implements the paper's contribution and the mechanisms it compares
//! against (§III-C, §V-C):
//!
//! * [`QueryDriven`] - the paper: per-cluster data-overlap `h_ik` (Eq. 2)
//!   against the query rectangle, supporting clusters `h_ik >= ε`, node
//!   potential `p_i = Σ h_ik` (Eq. 3), ranking `r_i = p_i K'/K` (Eq. 4),
//!   top-ℓ or `r_i >= ψ` selection (Eq. 5). Selected participants train
//!   only on their supporting clusters' data (§IV-A).
//! * [`RandomSelection`] - ℓ nodes uniformly at random (Ye et al. \[6\]).
//! * [`GameTheory`] - Hammoud et al. \[7\]: the leader trains a local model
//!   first, every node evaluates it on its own data, and the nodes where
//!   it performs *worst* (most different data) are selected.
//! * [`AllNodes`] - every node, all data (the upper-cost baseline).
//!
//! The related-work mechanisms the paper surveys but does not evaluate
//! against - data-centric composite scoring (Saha et al. \[8\]) and
//! fairness-aware stochastic selection (Huang et al. \[12\]) - live in
//! [`literature`].
//!
//! All policies implement [`SelectionPolicy`] and return the same
//! [`Selection`] structure, so the distributed-learning loop is policy
//! agnostic.
//!
//! [`CachedQueryDriven`] wraps the paper's policy in a selection cache
//! (quantized-query hashing, per-node epoch invalidation, delta
//! re-scoring) that returns bit-identical selections at a fraction of
//! the scoring work on repetitive query streams — see [`cache`].

//! [`IndexedQueryDriven`] instead prunes *candidate generation*: a
//! deterministic two-level spatial index over per-node summary hulls
//! ([`geom::index`]) feeds only the nodes that can possibly score into
//! the unchanged kernel — sublinear selection at fleet scale, bit-
//! identical to the full scan — see [`indexed`]. The two compose:
//! [`CachedQueryDriven::with_index`] routes cache misses through the
//! index.

pub mod baselines;
pub mod cache;
pub mod indexed;
pub mod literature;
pub mod policy;
pub mod query_driven;

pub use baselines::{AllNodes, GameTheory, RandomSelection};
pub use cache::{quantized_key, CacheConfig, CacheStats, CachedQueryDriven};
pub use geom::index::GridConfig;
pub use indexed::{IndexStats, IndexedQueryDriven, SelectionIndex};
pub use literature::{DataCentric, FairStochastic};
pub use policy::{
    Participant, Selection, SelectionContext, SelectionOverhead, SelectionPolicy,
    SupportingCluster, WithoutSelectivity,
};
pub use query_driven::{QueryDriven, RankingRule, SelectionCap};
