//! The policy abstraction shared by all selection mechanisms.

use edgesim::{EdgeNetwork, NodeId};
use geom::Query;

/// Everything a policy may look at when selecting participants.
///
/// The query-driven policy only reads the nodes' *summaries* (the
/// leader-visible state); the game-theory baseline additionally evaluates
/// a probe model against node data, which in the real deployment happens
/// on the nodes themselves — the context hands both out and each policy
/// documents what it touches.
pub struct SelectionContext<'a> {
    /// The participant population.
    pub network: &'a EdgeNetwork,
    /// The incoming analytics query (in the nodes' joint space).
    pub query: &'a Query,
}

impl<'a> SelectionContext<'a> {
    /// Creates a context, validating that the query lives in the nodes'
    /// joint space.
    ///
    /// # Panics
    /// Panics if the query dimensionality differs from the network's
    /// joint dimensionality.
    pub fn new(network: &'a EdgeNetwork, query: &'a Query) -> Self {
        let joint = network.nodes()[0].joint_dim();
        assert_eq!(
            query.dim(),
            joint,
            "query dim {} != joint data dim {joint}",
            query.dim()
        );
        Self { network, query }
    }
}

/// A cluster that supports the query on some node (`h_ik >= ε`).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SupportingCluster {
    /// Cluster id within the node.
    pub cluster_id: usize,
    /// The data-overlap rate `h_ik` (Eq. 2).
    pub overlap: f64,
    /// Member count (data-volume accounting).
    pub size: usize,
}

/// One selected participant.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Participant {
    /// The node.
    pub node: NodeId,
    /// The ranking `r_i` used for weighted averaging (Eq. 7); baselines
    /// that have no ranking report 1.0 (uniform weights).
    pub ranking: f64,
    /// The supporting clusters the node should train over, in the order
    /// training visits them. Empty means "train on the whole local
    /// dataset" (the baselines' behaviour).
    pub supporting_clusters: Vec<SupportingCluster>,
}

impl Participant {
    /// Samples this participant will train on.
    pub fn training_samples(&self, network: &EdgeNetwork) -> usize {
        if self.supporting_clusters.is_empty() {
            network.node(self.node).len()
        } else {
            self.supporting_clusters.iter().map(|c| c.size).sum()
        }
    }
}

/// The outcome of a selection round, ordered best-ranked first.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Selection {
    /// Selected participants (possibly empty when nothing overlaps the
    /// query).
    pub participants: Vec<Participant>,
    /// The ranked tail *behind* the participant cut, best-ranked first:
    /// nodes that supported the query but were trimmed by the cap.
    /// Fault-tolerant federations promote from this list when selected
    /// participants fail. Baselines without a ranking leave it empty —
    /// they have no principled replacement order.
    pub standby: Vec<Participant>,
}

impl Selection {
    /// Number of participants ℓ.
    pub fn len(&self) -> usize {
        self.participants.len()
    }

    /// True when no node was selected.
    pub fn is_empty(&self) -> bool {
        self.participants.is_empty()
    }

    /// The ranking-proportional aggregation weights λ_i of Eq. 7
    /// (uniform when every ranking is equal, e.g. for the baselines).
    pub fn lambda_weights(&self) -> Vec<f64> {
        let total: f64 = self.participants.iter().map(|p| p.ranking).sum();
        if total <= 0.0 {
            let n = self.participants.len().max(1);
            return vec![1.0 / n as f64; self.participants.len()];
        }
        self.participants
            .iter()
            .map(|p| p.ranking / total)
            .collect()
    }

    /// Total training samples over all participants.
    pub fn total_training_samples(&self, network: &EdgeNetwork) -> usize {
        self.participants
            .iter()
            .map(|p| p.training_samples(network))
            .sum()
    }
}

/// Work a policy performs *before* training can start.
///
/// The query-driven mechanism costs the leader a handful of arithmetic
/// operations over summaries (no entry here); the game-theory baseline
/// trains and ships a probe model first, which the paper identifies as
/// "the slowest" mechanism — this struct is how that cost reaches the
/// Fig. 8 accounting.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SelectionOverhead {
    /// Extra sample-visits per node: `(node, visits)`.
    pub per_node_visits: Vec<(NodeId, usize)>,
    /// Extra bytes on the wire (probe model broadcasts, reports, ...).
    pub bytes: usize,
}

/// A node-selection mechanism.
pub trait SelectionPolicy {
    /// Display name used in result tables.
    fn name(&self) -> &'static str;

    /// Selects participants for a query.
    fn select(&self, ctx: &SelectionContext<'_>) -> Selection;

    /// Pre-selection work the mechanism performs (see
    /// [`SelectionOverhead`]). Defaults to none.
    fn overhead(&self, _ctx: &SelectionContext<'_>) -> SelectionOverhead {
        SelectionOverhead::default()
    }

    /// Cache counters, for policies backed by a selection cache
    /// ([`crate::cache::CachedQueryDriven`]). `None` — the default — for
    /// uncached policies; the federation stream surfaces a snapshot in
    /// its result when present.
    fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        None
    }
}

/// Wrapper that keeps the inner policy's *node* choices but drops the
/// per-cluster data selectivity, so every participant trains on its whole
/// local dataset.
///
/// This is the "without considering the incoming queries" arm of Figs. 8
/// and 9: identical participants, identical aggregation weights, but no
/// query-driven data selection inside each node.
#[derive(Debug, Clone)]
pub struct WithoutSelectivity<P>(pub P);

impl<P: SelectionPolicy> SelectionPolicy for WithoutSelectivity<P> {
    fn name(&self) -> &'static str {
        "without-selectivity"
    }

    fn select(&self, ctx: &SelectionContext<'_>) -> Selection {
        let mut sel = self.0.select(ctx);
        for p in sel.participants.iter_mut().chain(sel.standby.iter_mut()) {
            p.supporting_clusters.clear();
        }
        sel
    }

    fn overhead(&self, ctx: &SelectionContext<'_>) -> SelectionOverhead {
        self.0.overhead(ctx)
    }

    fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.0.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn participant(node: usize, ranking: f64, clusters: &[(usize, f64, usize)]) -> Participant {
        Participant {
            node: NodeId(node),
            ranking,
            supporting_clusters: clusters
                .iter()
                .map(|&(cluster_id, overlap, size)| SupportingCluster {
                    cluster_id,
                    overlap,
                    size,
                })
                .collect(),
        }
    }

    #[test]
    fn lambda_weights_are_ranking_proportional_and_normalised() {
        let sel = Selection {
            participants: vec![participant(0, 3.0, &[]), participant(1, 1.0, &[])],
            standby: Vec::new(),
        };
        let w = sel.lambda_weights();
        assert!((w[0] - 0.75).abs() < 1e-12);
        assert!((w[1] - 0.25).abs() < 1e-12);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rankings_fall_back_to_uniform() {
        let sel = Selection {
            participants: vec![participant(0, 0.0, &[]), participant(1, 0.0, &[])],
            standby: Vec::new(),
        };
        assert_eq!(sel.lambda_weights(), vec![0.5, 0.5]);
        assert!(Selection::default().lambda_weights().is_empty());
    }

    #[test]
    fn supporting_cluster_samples_are_summed() {
        let p = participant(0, 1.0, &[(0, 0.5, 10), (2, 0.9, 25)]);
        // training_samples needs a network only for the empty case; build
        // a minimal one to exercise both paths.
        let data = mlkit::DenseDataset::new(
            linalg::Matrix::from_rows(&(0..7).map(|i| vec![i as f64]).collect::<Vec<_>>()),
            (0..7).map(|i| i as f64).collect(),
        );
        let net = edgesim::EdgeNetwork::from_datasets(vec![("x".into(), data)]);
        assert_eq!(p.training_samples(&net), 35);
        let full = participant(0, 1.0, &[]);
        assert_eq!(full.training_samples(&net), 7);
    }
}
