//! A selection cache with quantized-query hashing, per-node epoch
//! invalidation and delta re-scoring (ROADMAP item 2).
//!
//! The 200-query drifting/hotspot streams re-run the full `O(N·K·d)`
//! Eq. 2–4 kernel on near-identical rectangles every query. This module
//! memoises selections the way a game engine memoises positions — a
//! transposition table keyed by an FNV-1a hash of the *quantized* query
//! rectangle (per-dimension bucketing of the boundary values at a
//! configurable resolution):
//!
//! * **Exact hit** — the cached rectangle is bitwise equal to the
//!   incoming one and every node's summary epoch is unchanged: return
//!   the stored [`Selection`] without touching a single summary.
//! * **Delta hit** — the query drifted inside the same buckets (or a
//!   hash collision mapped a nearby rectangle here): only the
//!   dimensions whose bounds actually changed are re-evaluated through
//!   [`geom::Interval::overlap_ratio`]; per-cluster overlaps are rebuilt
//!   from the cached per-dimension ratios and rankings are reassembled
//!   through the *same* `QueryDriven` code path, so the result is
//!   bit-identical to an uncached run.
//! * **Invalidation** — a node whose [`edgesim::EdgeNode::summary_epoch`]
//!   moved (re-quantisation, `absorb`, private re-release) is fully
//!   re-scored; fresh nodes keep their cached ratios.
//! * **Miss** — no entry under the key: the full kernel runs (on the
//!   same fixed-chunk pool schedule as the uncached path) and the
//!   per-dimension ratio tables are recorded for future deltas.
//!
//! Bit-identity holds because every number either (a) comes out of the
//! identical function applied to bitwise-identical inputs, or (b) is
//! reused unchanged; sums are re-accumulated in the same order
//! (dimension order for Eq. 2, overlap-sorted order for Eq. 3) and the
//! final sort/cap runs through [`QueryDriven::rank_and_cap`] itself.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Mutex;

use edgesim::NodeId;
use par::ThreadPool;

use crate::indexed::{IndexStats, SelectionIndex};
use crate::policy::{Participant, Selection, SelectionContext, SelectionOverhead, SelectionPolicy};
use crate::query_driven::{QueryDriven, NODE_CHUNK};
use geom::index::GridConfig;

/// Tuning knobs for [`CachedQueryDriven`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Bucket width (in data units) of the per-dimension quantisation
    /// that forms the hash key. Rectangles whose bounds fall in the same
    /// buckets share an entry and serve each other via delta re-scoring;
    /// coarser buckets (larger width) trade more delta work for more
    /// sharing. Must be positive and finite.
    pub bucket_width: f64,
    /// Maximum number of cached entries; the oldest-inserted entry is
    /// evicted first (deterministic FIFO).
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            bucket_width: 1.0,
            capacity: 256,
        }
    }
}

impl CacheConfig {
    /// The cache-bucket key of a query under this configuration. Queries
    /// with equal keys land in the same transposition-table entry, which
    /// is exactly the "compatible in-flight queries" test the serving
    /// batcher uses to coalesce queries into shared federation waves.
    pub fn compatibility_key(&self, query: &geom::Query) -> u64 {
        quantized_key(&query.region().to_boundary_vec(), self.bucket_width)
    }

    /// Reads `QENS_CACHE_QUANT` (bucket width in data units) on top of
    /// the defaults. Unset, empty, non-positive or unparseable values
    /// fall back to the default width.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("QENS_CACHE_QUANT") {
            if let Ok(w) = v.trim().parse::<f64>() {
                if w.is_finite() && w > 0.0 {
                    cfg.bucket_width = w;
                }
            }
        }
        cfg
    }
}

/// Monotonic cache counters, mirrored into the global telemetry registry
/// as `qens_cache_{hits,misses,invalidations,entries}_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStats {
    /// Lookups served from the cache — exact or by delta re-scoring.
    pub hits: u64,
    /// Lookups that ran the full kernel and inserted a new entry.
    pub misses: u64,
    /// Hits that needed delta re-scoring (drifted bounds within the
    /// entry's buckets); always `<= hits`.
    pub delta_hits: u64,
    /// Stale nodes fully re-scored because their summary epoch moved.
    pub invalidations: u64,
    /// Entries ever inserted (monotonic; `entries - evictions` live).
    pub entries: u64,
    /// Entries evicted by the FIFO capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Cached per-cluster state: identity, size and the per-dimension
/// overlap ratios against the entry's exact rectangle.
#[derive(Debug, Clone)]
struct ClusterScores {
    cluster_id: usize,
    size: usize,
    ratios: Vec<f64>,
}

/// Cached per-node state: the summary epoch the ratios were computed at
/// plus one [`ClusterScores`] per summary, in summary order.
#[derive(Debug, Clone)]
struct NodeScores {
    node: NodeId,
    epoch: u64,
    clusters: Vec<ClusterScores>,
}

/// One transposition-table entry.
#[derive(Debug, Clone)]
struct CacheEntry {
    /// The exact boundary vector the entry was (re-)scored against —
    /// compared bitwise on lookup to detect drift within the buckets.
    bounds: Vec<f64>,
    /// Per-node ratio tables, in network node order.
    nodes: Vec<NodeScores>,
    /// The assembled selection for `bounds`.
    selection: Selection,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<u64, CacheEntry>,
    /// Insertion order for deterministic FIFO eviction.
    order: VecDeque<u64>,
    stats: CacheStats,
}

/// [`QueryDriven`] behind a selection cache. Implements
/// [`SelectionPolicy`] with the exact same observable selections —
/// participants, standby, rankings, supporting clusters, all bitwise —
/// as the inner policy, at a fraction of the scoring work on repetitive
/// streams.
///
/// One instance caches for one network: entries are invalidated per
/// node through [`edgesim::EdgeNode::summary_epoch`], so feeding the
/// same instance contexts over *different* networks (beyond mutations
/// of the original) is detected only when node count/ids/epochs differ.
pub struct CachedQueryDriven {
    inner: QueryDriven,
    config: CacheConfig,
    state: Mutex<CacheState>,
    /// Spatial index for miss-path candidate generation
    /// ([`CachedQueryDriven::with_index`]); `None` = plain full-kernel
    /// misses. Hits never consult it.
    index: Option<SelectionIndex>,
}

impl std::fmt::Debug for CachedQueryDriven {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedQueryDriven")
            .field("inner", &self.inner)
            .field("config", &self.config)
            .field("stats", &self.stats())
            .field("indexed", &self.index.is_some())
            .finish()
    }
}

/// FNV-1a over the per-dimension bucket indices of a boundary vector —
/// the transposition-table key. Public because the serving batcher uses
/// the *same* keying to decide which in-flight queries are compatible:
/// two rectangles with equal keys share a cache entry (exact or delta),
/// so coalescing them into one federation wave costs one scoring pass.
pub fn quantized_key(bounds: &[f64], bucket_width: f64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bounds {
        // Saturating cast: out-of-range buckets collapse to the extreme
        // bucket rather than wrapping (f64-to-int casts saturate in
        // Rust). NaN cannot occur (interval bounds are finite).
        let bucket = (b / bucket_width).floor() as i64;
        for byte in bucket.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

impl CachedQueryDriven {
    /// Wraps a policy with a cache under the given configuration.
    ///
    /// # Panics
    /// Panics if `bucket_width` is not positive-finite or `capacity`
    /// is 0.
    pub fn new(inner: QueryDriven, config: CacheConfig) -> Self {
        assert!(
            config.bucket_width.is_finite() && config.bucket_width > 0.0,
            "cache bucket width must be positive and finite, got {}",
            config.bucket_width
        );
        assert!(config.capacity > 0, "cache capacity must be non-zero");
        Self {
            inner,
            config,
            state: Mutex::new(CacheState::default()),
            index: None,
        }
    }

    /// Wraps with [`CacheConfig::default`].
    pub fn with_defaults(inner: QueryDriven) -> Self {
        Self::new(inner, CacheConfig::default())
    }

    /// Like [`CachedQueryDriven::new`] but cache *misses* generate
    /// candidates through a spatial index instead of scoring every node
    /// (see [`crate::indexed`]): hits bypass the index entirely, misses
    /// score only the candidates and synthesise exact-zero ratio tables
    /// for the rest — bit-identical by the indexed module's argument,
    /// since non-candidates are axis-disjoint in every dimension and
    /// [`geom::Interval::overlap_ratio`] is exactly `0.0` on every such
    /// pair. `summary_epoch` invalidation covers both structures: a
    /// bumped node re-scores its cache entry *and* (via the index's own
    /// epoch snapshot) rebuilds the index.
    pub fn with_index(inner: QueryDriven, config: CacheConfig, grid: GridConfig) -> Self {
        let mut cached = Self::new(inner, config);
        cached.index = Some(SelectionIndex::new(grid));
        cached
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &QueryDriven {
        &self.inner
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().expect("cache lock poisoned").stats
    }

    /// Counters of the miss-path spatial index, when one is attached
    /// ([`CachedQueryDriven::with_index`]).
    pub fn index_stats(&self) -> Option<IndexStats> {
        self.index.as_ref().map(SelectionIndex::stats)
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("cache lock poisoned")
            .entries
            .len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters survive).
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("cache lock poisoned");
        state.entries.clear();
        state.order.clear();
    }

    /// [`SelectionPolicy::select`] on an explicit pool handle; see the
    /// module docs for the hit/delta/invalidation/miss flow. The pool
    /// only ever runs the same fixed-chunk node map as the uncached
    /// path, so results are bit-identical at any worker count.
    pub fn select_with_pool(&self, ctx: &SelectionContext<'_>, pool: &ThreadPool) -> Selection {
        let _span = telemetry::span!("qens_selection_select_nanos");
        let nodes = ctx.network.nodes();
        let _trace_span = telemetry::trace::span_args(
            "selection.select_cached",
            &[("nodes", nodes.len() as u64)],
        );
        let bounds = ctx.query.region().to_boundary_vec();
        let key = quantized_key(&bounds, self.config.bucket_width);
        let mut state = self.state.lock().expect("cache lock poisoned");

        let reusable = state.entries.get(&key).is_some_and(|e| {
            e.nodes.len() == nodes.len()
                && e.nodes.iter().zip(nodes).all(|(ns, n)| ns.node == n.id())
        });
        if !reusable {
            // Miss (or an unusable entry after network membership
            // changes): run the full kernel and (re)install the entry.
            // With an index attached (and ε > 0, where pruning is
            // sound), only candidates are scored; pruned nodes get
            // synthesised all-zero tables.
            let (tables, participants) = match &self.index {
                Some(index) if self.inner.epsilon > 0.0 => self.score_all_indexed(ctx, pool, index),
                Some(index) => {
                    index.record_fallback();
                    self.score_all(ctx, pool)
                }
                None => self.score_all(ctx, pool),
            };
            let selection = self.inner.rank_and_cap(participants);
            state.stats.misses += 1;
            telemetry::counter!("qens_cache_misses_total").add(1);
            telemetry::trace::instant("selection.cache_miss", &[("nodes", nodes.len() as u64)]);
            self.insert(&mut state, key, bounds, tables, selection.clone());
            return selection;
        }

        let entry = state.entries.get(&key).expect("checked above");
        let dim = ctx.query.dim();
        // Dimensions whose lo/hi moved since the entry was scored
        // (bitwise compare: only exact reuse keeps exact results).
        let changed_dims: Vec<usize> = (0..dim)
            .filter(|d| {
                entry.bounds[2 * d].to_bits() != bounds[2 * d].to_bits()
                    || entry.bounds[2 * d + 1].to_bits() != bounds[2 * d + 1].to_bits()
            })
            .collect();
        let stale: Vec<bool> = entry
            .nodes
            .iter()
            .zip(nodes)
            .map(|(ns, n)| ns.epoch != n.summary_epoch())
            .collect();
        let n_stale = stale.iter().filter(|s| **s).count();

        if changed_dims.is_empty() && n_stale == 0 {
            let selection = entry.selection.clone();
            state.stats.hits += 1;
            telemetry::counter!("qens_cache_hits_total").add(1);
            telemetry::trace::instant(
                "selection.cache_hit",
                &[("delta_dims", 0), ("stale_nodes", 0)],
            );
            return selection;
        }

        // Delta path: re-score only the moved dimensions on fresh nodes
        // and everything on stale nodes, mutating the entry's tables in
        // place. The per-node delta is a handful of interval divisions,
        // so it runs serially — no table clones, no pool dispatch — and
        // since every value is either reused or recomputed by the same
        // function, thread-count bit-identity is trivial.
        let rect = ctx.query.region();
        let entry = state.entries.get_mut(&key).expect("checked above");
        let mut participants = Vec::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            if stale[i] {
                let (table, participant) = self.score_one(node, ctx.query);
                entry.nodes[i] = table;
                participants.push(participant);
            } else {
                let table = &mut entry.nodes[i];
                for cluster in &mut table.clusters {
                    // Summaries are epoch-stable, so cluster ids and
                    // rects match what the table was built from.
                    let k_rect = &node
                        .summaries()
                        .iter()
                        .find(|s| s.cluster_id == cluster.cluster_id)
                        .expect("fresh node keeps its cluster ids")
                        .rect;
                    for &d in &changed_dims {
                        cluster.ratios[d] = rect.interval(d).overlap_ratio(k_rect.interval(d));
                    }
                }
                participants.push(self.rank_table(node.id(), table));
            }
        }
        let selection = self.inner.rank_and_cap(participants);
        entry.bounds = bounds;
        entry.selection = selection.clone();
        state.stats.hits += 1;
        state.stats.delta_hits += 1;
        state.stats.invalidations += n_stale as u64;
        telemetry::counter!("qens_cache_hits_total").add(1);
        if n_stale > 0 {
            telemetry::counter!("qens_cache_invalidations_total").add(n_stale as u64);
            telemetry::journal::cache_invalidated(ctx.query.id(), n_stale as u64);
        }
        telemetry::trace::instant(
            "selection.cache_hit",
            &[
                ("delta_dims", changed_dims.len() as u64),
                ("stale_nodes", n_stale as u64),
            ],
        );
        selection
    }

    /// Full scoring of the whole network: the uncached kernel, but
    /// recording the per-dimension ratio tables alongside.
    fn score_all(
        &self,
        ctx: &SelectionContext<'_>,
        pool: &ThreadPool,
    ) -> (Vec<NodeScores>, Vec<Option<Participant>>) {
        let scored: Vec<(NodeScores, Option<Participant>)> =
            pool.map_indexed(ctx.network.nodes(), NODE_CHUNK, |_, node| {
                self.score_one(node, ctx.query)
            });
        scored.into_iter().unzip()
    }

    /// Indexed variant of [`CachedQueryDriven::score_all`]: candidates
    /// are scored exactly like the plain path; every pruned node gets a
    /// synthesised table with all-zero per-dimension ratios — the exact
    /// bits [`CachedQueryDriven::score_one`] would have produced, since
    /// a pruned node's every cluster is disjoint from the query in
    /// every dimension — so later delta/invalidation passes over the
    /// entry behave identically to a full-kernel miss.
    fn score_all_indexed(
        &self,
        ctx: &SelectionContext<'_>,
        pool: &ThreadPool,
        index: &SelectionIndex,
    ) -> (Vec<NodeScores>, Vec<Option<Participant>>) {
        let nodes = ctx.network.nodes();
        let candidates = index.candidates(ctx.network, ctx.query, pool);
        let mut is_candidate = vec![false; nodes.len()];
        for &i in &candidates {
            is_candidate[i as usize] = true;
        }
        let dim = ctx.query.dim();
        let scored: Vec<(NodeScores, Option<Participant>)> =
            pool.map_indexed(nodes, NODE_CHUNK, |i, node| {
                if is_candidate[i] {
                    self.score_one(node, ctx.query)
                } else {
                    let table = NodeScores {
                        node: node.id(),
                        epoch: node.summary_epoch(),
                        clusters: node
                            .summaries()
                            .iter()
                            .map(|s| ClusterScores {
                                cluster_id: s.cluster_id,
                                size: s.size,
                                ratios: vec![0.0; dim],
                            })
                            .collect(),
                    };
                    (table, None)
                }
            });
        scored.into_iter().unzip()
    }

    /// Scores one node from scratch, returning its ratio table and
    /// participant entry. Mirrors [`QueryDriven::score_node`] — same
    /// quantisation guard, same per-dimension ratios in the same order —
    /// with the table as a by-product.
    fn score_one(
        &self,
        node: &edgesim::EdgeNode,
        query: &geom::Query,
    ) -> (NodeScores, Option<Participant>) {
        assert!(
            node.is_quantized(),
            "node {} has no cluster summaries; call EdgeNetwork::quantize_all first",
            node.id()
        );
        let _trace_score = telemetry::trace::wall_span_args(
            "selection.score_node",
            &[("node", node.id().0 as u64)],
        );
        let rect = query.region();
        let dim = rect.dim();
        let clusters: Vec<ClusterScores> = node
            .summaries()
            .iter()
            .map(|s| ClusterScores {
                cluster_id: s.cluster_id,
                size: s.size,
                ratios: (0..dim)
                    .map(|d| rect.interval(d).overlap_ratio(s.rect.interval(d)))
                    .collect(),
            })
            .collect();
        telemetry::counter!("qens_selection_overlap_evals_total").add(clusters.len() as u64);
        let table = NodeScores {
            node: node.id(),
            epoch: node.summary_epoch(),
            clusters,
        };
        let participant = self.rank_table(node.id(), &table);
        (table, participant)
    }

    /// Eq. 2–4 from a ratio table: per-cluster `h_ik` is the mean of the
    /// per-dimension ratios accumulated in dimension order — the exact
    /// summation [`geom::HyperRect::overlap_rate`] performs — then the
    /// shared [`QueryDriven::rank_clusters`] filter/sort/rank runs.
    fn rank_table(&self, node: NodeId, table: &NodeScores) -> Option<Participant> {
        let (ranking, supporting) = self.inner.rank_clusters(
            table.clusters.len(),
            table.clusters.iter().map(|c| {
                let h = c.ratios.iter().sum::<f64>() / c.ratios.len() as f64;
                (c.cluster_id, c.size, h)
            }),
        );
        self.inner.participant_for(node, ranking, supporting)
    }

    /// Installs (or replaces) an entry, evicting FIFO at capacity.
    fn insert(
        &self,
        state: &mut CacheState,
        key: u64,
        bounds: Vec<f64>,
        nodes: Vec<NodeScores>,
        selection: Selection,
    ) {
        if state
            .entries
            .insert(
                key,
                CacheEntry {
                    bounds,
                    nodes,
                    selection,
                },
            )
            .is_none()
        {
            state.order.push_back(key);
            state.stats.entries += 1;
            telemetry::counter!("qens_cache_entries_total").add(1);
        }
        while state.entries.len() > self.config.capacity {
            let Some(oldest) = state.order.pop_front() else {
                break;
            };
            state.entries.remove(&oldest);
            state.stats.evictions += 1;
        }
        telemetry::gauge!("qens_cache_entries").set(state.entries.len() as f64);
    }
}

impl SelectionPolicy for CachedQueryDriven {
    /// Same display name as the wrapped policy: the cache changes *how*
    /// a selection is computed, never *what* is selected, so result
    /// tables must not fork on it.
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn select(&self, ctx: &SelectionContext<'_>) -> Selection {
        self.select_with_pool(ctx, par::global())
    }

    fn overhead(&self, ctx: &SelectionContext<'_>) -> SelectionOverhead {
        self.inner.overhead(ctx)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgesim::EdgeNetwork;
    use geom::Query;
    use linalg::Matrix;
    use mlkit::DenseDataset;

    fn node_dataset(x0: f64) -> DenseDataset {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![x0 + i as f64 / 3.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        DenseDataset::new(Matrix::from_rows(&rows), y)
    }

    fn network() -> EdgeNetwork {
        let mut net = EdgeNetwork::from_datasets(vec![
            ("near".into(), node_dataset(0.0)),
            ("mid".into(), node_dataset(10.0)),
            ("far".into(), node_dataset(100.0)),
        ]);
        net.quantize_all(3, 5);
        net
    }

    fn assert_bitwise_eq(a: &Selection, b: &Selection) {
        assert_eq!(a, b);
        for (x, y) in a
            .participants
            .iter()
            .chain(&a.standby)
            .zip(b.participants.iter().chain(&b.standby))
        {
            assert_eq!(x.ranking.to_bits(), y.ranking.to_bits());
            for (cx, cy) in x.supporting_clusters.iter().zip(&y.supporting_clusters) {
                assert_eq!(cx.overlap.to_bits(), cy.overlap.to_bits());
            }
        }
    }

    #[test]
    fn exact_repeat_hits_and_matches_uncached() {
        let net = network();
        let plain = QueryDriven::top_l(3);
        let cached = CachedQueryDriven::with_defaults(plain.clone());
        let query = Query::from_boundary_vec(0, &[0.0, 15.0, 0.0, 15.0]);
        let ctx = SelectionContext::new(&net, &query);
        let want = plain.select(&ctx);
        let first = cached.select(&ctx);
        let second = cached.select(&ctx);
        assert_bitwise_eq(&want, &first);
        assert_bitwise_eq(&want, &second);
        let stats = cached.stats();
        assert_eq!((stats.misses, stats.hits, stats.delta_hits), (1, 1, 0));
        assert_eq!(cached.len(), 1);
    }

    #[test]
    fn drifted_query_delta_rescored_bitwise_equal() {
        let net = network();
        let plain = QueryDriven::top_l(3);
        // Huge buckets: every drift below lands in the same entry.
        let cached = CachedQueryDriven::new(
            plain.clone(),
            CacheConfig {
                bucket_width: 1000.0,
                capacity: 8,
            },
        );
        // Drift one dimension, then both, re-checking bit-identity.
        let steps = [
            [0.0, 15.0, 0.0, 15.0],
            [0.2, 15.2, 0.0, 15.0], // dim 0 moved
            [0.2, 15.2, 0.3, 14.8], // dim 1 moved
            [0.9, 16.0, 0.5, 15.5], // both moved
        ];
        for (i, b) in steps.iter().enumerate() {
            let query = Query::from_boundary_vec(i as u64, b);
            let ctx = SelectionContext::new(&net, &query);
            assert_bitwise_eq(&plain.select(&ctx), &cached.select(&ctx));
        }
        let stats = cached.stats();
        assert_eq!(stats.misses, 1, "only the first query misses");
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.delta_hits, 3);
        assert_eq!(stats.invalidations, 0);
        assert!(stats.hit_rate() > 0.7);
    }

    #[test]
    fn absorb_invalidates_only_the_changed_node() {
        let mut net = network();
        let plain = QueryDriven::top_l(3);
        let cached = CachedQueryDriven::with_defaults(plain.clone());
        let query = Query::from_boundary_vec(0, &[0.0, 25.0, 0.0, 25.0]);
        cached.select(&SelectionContext::new(&net, &query));
        // New samples shift node 1's summaries once re-quantised.
        let extra = DenseDataset::new(Matrix::from_rows(&[vec![5.0], vec![6.0]]), vec![5.0, 6.0]);
        net.node_mut(NodeId(1)).absorb(&extra);
        net.node_mut(NodeId(1)).quantize(3, 5);
        let ctx = SelectionContext::new(&net, &query);
        assert_bitwise_eq(&plain.select(&ctx), &cached.select(&ctx));
        let stats = cached.stats();
        assert_eq!(stats.invalidations, 1, "exactly node 1 was re-scored");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn capacity_evicts_fifo() {
        let net = network();
        let cached = CachedQueryDriven::new(
            QueryDriven::top_l(3),
            CacheConfig {
                bucket_width: 0.001, // every query its own bucket
                capacity: 2,
            },
        );
        for i in 0..5u64 {
            let off = i as f64 * 10.0;
            let query = Query::from_boundary_vec(i, &[off, off + 5.0, off, off + 5.0]);
            cached.select(&SelectionContext::new(&net, &query));
        }
        assert_eq!(cached.len(), 2);
        let stats = cached.stats();
        assert_eq!(stats.entries, 5);
        assert_eq!(stats.evictions, 3);
        assert_eq!(stats.misses, 5);
    }

    #[test]
    fn quantized_key_buckets_and_discriminates() {
        let a = quantized_key(&[0.1, 5.2, 3.3, 8.9], 10.0);
        let b = quantized_key(&[0.4, 5.9, 3.0, 8.0], 10.0); // same buckets
        let c = quantized_key(&[11.0, 15.0, 3.3, 8.9], 10.0); // dim 0 moved
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Negative bounds bucket below zero, not onto bucket 0.
        assert_ne!(
            quantized_key(&[-0.5, 0.5], 1.0),
            quantized_key(&[0.5, 0.5], 1.0)
        );
    }

    #[test]
    fn compatibility_key_matches_the_table_keying() {
        let cfg = CacheConfig {
            bucket_width: 10.0,
            capacity: 8,
        };
        let q = Query::from_boundary_vec(3, &[0.1, 5.2, 3.3, 8.9]);
        assert_eq!(
            cfg.compatibility_key(&q),
            quantized_key(&[0.1, 5.2, 3.3, 8.9], 10.0)
        );
        // Same buckets => compatible; a moved bucket => not.
        let near = Query::from_boundary_vec(4, &[0.4, 5.9, 3.0, 8.0]);
        let far = Query::from_boundary_vec(5, &[11.0, 15.0, 3.3, 8.9]);
        assert_eq!(cfg.compatibility_key(&q), cfg.compatibility_key(&near));
        assert_ne!(cfg.compatibility_key(&q), cfg.compatibility_key(&far));
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let net = network();
        let cached = CachedQueryDriven::with_defaults(QueryDriven::top_l(3));
        let query = Query::from_boundary_vec(0, &[0.0, 15.0, 0.0, 15.0]);
        cached.select(&SelectionContext::new(&net, &query));
        assert!(!cached.is_empty());
        cached.clear();
        assert!(cached.is_empty());
        assert_eq!(cached.stats().misses, 1);
        cached.select(&SelectionContext::new(&net, &query));
        assert_eq!(cached.stats().misses, 2);
    }
}
