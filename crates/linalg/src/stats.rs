//! Descriptive statistics over slices and matrix columns.

use crate::Matrix;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum; `None` for an empty slice, NaNs are ignored.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .filter(|x| !x.is_nan())
        .copied()
        .fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(m) => m.min(x),
            })
        })
}

/// Maximum; `None` for an empty slice, NaNs are ignored.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .filter(|x| !x.is_nan())
        .copied()
        .fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(m) => m.max(x),
            })
        })
}

/// `(min, max)` over a slice; `None` if empty or all-NaN.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    Some((min(xs)?, max(xs)?))
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// # Panics
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0,100]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered above"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Population covariance of two equal-length slices.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64
}

/// Pearson correlation coefficient; 0 when either side is constant.
///
/// The paper's §II motivates the selection mechanism by observing that the
/// same feature pair can correlate *positively* in one node and *negatively*
/// in another; this function is how the examples surface that.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx == 0.0 || sy == 0.0 {
        return 0.0;
    }
    covariance(xs, ys) / (sx * sy)
}

/// Ordinary-least-squares slope and intercept of `y` on `x`.
///
/// Returns `(slope, intercept)`; slope is 0 when `x` is constant.
pub fn ols_line(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let vx = variance(xs);
    if vx == 0.0 {
        return (0.0, mean(ys));
    }
    let slope = covariance(xs, ys) / vx;
    let intercept = mean(ys) - slope * mean(xs);
    (slope, intercept)
}

/// Per-column mean of a matrix.
pub fn column_means(m: &Matrix) -> Vec<f64> {
    let mut out = vec![0.0; m.cols()];
    for row in m.row_iter() {
        for (o, &x) in out.iter_mut().zip(row) {
            *o += x;
        }
    }
    if m.rows() > 0 {
        let inv = 1.0 / m.rows() as f64;
        for o in &mut out {
            *o *= inv;
        }
    }
    out
}

/// Per-column population standard deviation of a matrix.
pub fn column_std_devs(m: &Matrix) -> Vec<f64> {
    let means = column_means(m);
    let mut out = vec![0.0; m.cols()];
    for row in m.row_iter() {
        for ((o, &x), &mu) in out.iter_mut().zip(row).zip(&means) {
            let d = x - mu;
            *o += d * d;
        }
    }
    if m.rows() > 1 {
        let inv = 1.0 / m.rows() as f64;
        for o in &mut out {
            *o = (*o * inv).sqrt();
        }
    } else {
        out.fill(0.0);
    }
    out
}

/// Per-column `(min, max)` of a matrix.
///
/// # Panics
/// Panics if the matrix has no rows.
pub fn column_min_max(m: &Matrix) -> Vec<(f64, f64)> {
    assert!(m.rows() > 0, "column_min_max on an empty matrix");
    let mut out: Vec<(f64, f64)> = m.row(0).iter().map(|&x| (x, x)).collect();
    for row in m.row_iter().skip(1) {
        for (o, &x) in out.iter_mut().zip(row) {
            o.0 = o.0.min(x);
            o.1 = o.1.max(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn min_max_ignores_nans() {
        let xs = [f64::NAN, 2.0, -1.0, f64::NAN];
        assert_eq!(min_max(&xs), Some((-1.0, 2.0)));
        assert_eq!(min_max(&[f64::NAN]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(percentile(&xs, 25.0), Some(1.75));
    }

    #[test]
    fn pearson_detects_sign() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0; 4]), 0.0);
    }

    #[test]
    fn ols_line_recovers_exact_linear_relation() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.0).collect();
        let (slope, intercept) = ols_line(&xs, &ys);
        assert!((slope - 3.0).abs() < 1e-12);
        assert!((intercept + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ols_line_constant_x_degenerates_to_mean() {
        let (slope, intercept) = ols_line(&[2.0, 2.0], &[1.0, 3.0]);
        assert_eq!(slope, 0.0);
        assert_eq!(intercept, 2.0);
    }

    #[test]
    fn column_stats_match_per_column_slices() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 20.0]]);
        assert_eq!(column_means(&m), vec![3.0, 20.0]);
        let mm = column_min_max(&m);
        assert_eq!(mm, vec![(1.0, 5.0), (10.0, 30.0)]);
        let sds = column_std_devs(&m);
        assert!((sds[0] - std_dev(&[1.0, 3.0, 5.0])).abs() < 1e-12);
        assert!((sds[1] - std_dev(&[10.0, 30.0, 20.0])).abs() < 1e-12);
    }
}
