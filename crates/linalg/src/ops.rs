//! Slice-level numeric kernels shared across the workspace.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    // Four-way unrolled accumulation: lets LLVM vectorise without relying
    // on float-reassociation flags.
    let mut acc = [0.0_f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// `y += alpha * x` over equal-length slices.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(
        x.len(),
        y.len(),
        "axpy length mismatch: {} vs {}",
        x.len(),
        y.len()
    );
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place: `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Squared Euclidean distance between two equal-length slices.
///
/// This is the inner kernel of k-means (Eq. 1 of the paper); it avoids the
/// square root since only order comparisons are needed there.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance length mismatch");
    let mut acc = 0.0;
    for (ai, bi) in a.iter().zip(b) {
        let d = ai - bi;
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `out = a - b` elementwise into a fresh vector.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Linear interpolation `a + t*(b-a)` elementwise.
pub fn lerp(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "lerp length mismatch");
    a.iter().zip(b).map(|(x, y)| x + t * (y - x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_handles_all_tail_lengths() {
        for n in 0..9 {
            let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let b: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
            let want: f64 = (0..n).map(|i| (i * i * 2) as f64).sum();
            assert_eq!(dot(&a, &b), want, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_rejects_length_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn distances_agree() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(squared_distance(&a, &b), 25.0);
        assert_eq!(distance(&a, &b), 5.0);
        assert_eq!(distance(&a, &a), 0.0);
    }

    #[test]
    fn norm_of_unit_axes() {
        assert_eq!(norm(&[1.0, 0.0, 0.0]), 1.0);
        assert_eq!(norm(&[0.0; 4]), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = [0.0, 10.0];
        let b = [2.0, 20.0];
        assert_eq!(lerp(&a, &b, 0.0), a.to_vec());
        assert_eq!(lerp(&a, &b, 1.0), b.to_vec());
        assert_eq!(lerp(&a, &b, 0.5), vec![1.0, 15.0]);
    }

    #[test]
    fn scale_multiplies_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn sub_is_elementwise() {
        assert_eq!(sub(&[5.0, 1.0], &[2.0, 3.0]), vec![3.0, -2.0]);
    }
}
