//! Row-major dense `f64` matrix.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

use crate::ops;

/// A dense, row-major matrix of `f64` values.
///
/// The representation is a single contiguous buffer, so row slices are
/// cheap (`&data[r*cols..(r+1)*cols]`) and iteration is cache-friendly.
/// All dimension mismatches panic: in this workspace shapes are static
/// properties of the model architecture, so a mismatch is a programming
/// error rather than a recoverable condition.
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if rows are ragged or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// A single-column matrix from a slice.
    pub fn column_vector(v: &[f64]) -> Self {
        Self::from_vec(v.len(), 1, v.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "col index {c} out of bounds ({} cols)",
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns a new matrix containing only the rows whose indices appear in
    /// `indices`, in that order. Indices may repeat.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix::from_vec(indices.len(), self.cols, data)
    }

    /// Returns a new matrix containing only the listed columns, in order.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        for &c in indices {
            assert!(
                c < self.cols,
                "col index {c} out of bounds ({} cols)",
                self.cols
            );
        }
        let mut data = Vec::with_capacity(indices.len() * self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            data.extend(indices.iter().map(|&c| row[c]));
        }
        Matrix::from_vec(self.rows, indices.len(), data)
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack requires equal column counts");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// The inner loop runs over a row of `rhs` so that both operands are
    /// scanned sequentially (ikj ordering), which keeps the kernel memory-
    /// bound friendly without blocking; the matrices in this workspace are
    /// at most a few hundred columns wide.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                ops::axpy(aik, b_row, out_row);
            }
        }
        out
    }

    /// `self * v` for a dense vector `v` (length = `cols`).
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec length mismatch");
        self.row_iter().map(|row| ops::dot(row, v)).collect()
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&x| f(x)).collect(),
        )
    }

    /// Element-wise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// `self += alpha * other`, in place.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn axpy_inplace(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy_inplace shape mismatch");
        ops::axpy(alpha, &other.data, &mut self.data);
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if show < self.rows {
            writeln!(f, "  ... ({} more rows)", self.rows - show)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_rows_round_trips_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_rejects_ragged_input() {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = [10.0, 20.0];
        let got = a.matvec(&v);
        let want = a.matmul(&Matrix::column_vector(&v));
        assert_eq!(got, want.into_vec());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn select_rows_preserves_order_and_allows_repeats() {
        let a = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let s = a.select_rows(&[2, 0, 2]);
        assert_eq!(s.as_slice(), &[2.0, 0.0, 2.0]);
    }

    #[test]
    fn select_cols_picks_columns() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let s = a.select_cols(&[2, 0]);
        assert_eq!(s.as_slice(), &[3.0, 1.0, 6.0, 4.0]);
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn arithmetic_ops_are_elementwise() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![10.0, 20.0]]);
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[10.0, 40.0]);
    }

    #[test]
    fn axpy_inplace_accumulates() {
        let mut a = Matrix::zeros(1, 3);
        let g = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        a.axpy_inplace(0.5, &g);
        a.axpy_inplace(0.5, &g);
        assert_eq!(a.as_slice(), g.as_slice());
    }

    #[test]
    fn norms_and_reductions() {
        let a = Matrix::from_rows(&[vec![3.0, -4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.sum(), -1.0);
        assert!(a.all_finite());
        assert!(!a.map(|x| x / 0.0).all_finite());
    }
}
