//! Dense linear-algebra substrate for the `qens` workspace.
//!
//! The paper's pipeline (k-means quantisation, linear regression, a small
//! multi-layer perceptron, feature scaling) only needs dense `f64` matrices
//! and a handful of vector kernels, so this crate implements exactly that —
//! no BLAS, no external numerics dependency. Everything is deterministic:
//! all random initialisation is driven by caller-supplied seeds.
//!
//! # Layout
//!
//! * [`Matrix`] — row-major dense matrix with the usual structural and
//!   arithmetic operations.
//! * [`ops`] — slice-level kernels (dot, axpy, scaled add) shared by the
//!   matrix code and by hot loops in `mlkit`/`cluster`.
//! * [`stats`] — descriptive statistics over slices and matrix columns
//!   (mean, variance, min/max, Pearson correlation, OLS slope).
//! * [`scale`] — feature scalers (standard score and min-max) with
//!   fit/transform/inverse-transform.
//! * [`rng`] — seed plumbing helpers so each subsystem derives independent
//!   yet reproducible RNG streams.

pub mod matrix;
pub mod ops;
pub mod rng;
pub mod scale;
pub mod stats;

pub use matrix::Matrix;
pub use scale::{MinMaxScaler, StandardScaler};
