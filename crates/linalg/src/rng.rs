//! In-tree deterministic randomness for the whole workspace.
//!
//! Every stochastic subsystem (data generation, k-means initialisation,
//! model weight init, random node selection, query workloads) receives
//! its own derived seed so that changing one subsystem's consumption
//! pattern does not perturb the others.
//!
//! The generator is a from-scratch xoshiro256++ (Blackman & Vigna)
//! seeded through the SplitMix64 finaliser — no external crates, fully
//! reproducible across platforms, and fast enough for every hot path in
//! the workspace. The [`Rng`] trait and [`SliceRandom`] extension mirror
//! the small slice of the `rand` API the workspace actually uses, so
//! call sites read identically while the default build needs no
//! registry access.

/// Derives a child seed from a parent seed and a stream label.
///
/// Uses the SplitMix64 finaliser, which is a bijective avalanche mix — two
/// different `(seed, stream)` pairs essentially never collide in practice.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One SplitMix64 step: advances the state and returns the mixed output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The uniform-sampling surface the workspace relies on.
///
/// Mirrors the (tiny) subset of `rand::Rng` that the crates use:
/// [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`], all derived
/// from [`Rng::next_u64`].
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A sample of `T` from its standard distribution (`f64`/`f32` are
    /// uniform in `[0, 1)`; integers are uniform over the full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Types samplable from their "standard" distribution (see [`Rng::gen`]).
pub trait Standard {
    /// Draws one sample.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform integer in `[0, n)` via 128-bit
/// multiply-shift (Lemire). `n` must be positive.
fn uniform_u64<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64 + 1;
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + rng.gen::<f64>() * (hi - lo)
    }
}

/// Slice helpers mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
    /// A uniformly chosen element (`None` when empty).
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64(rng, self.len() as u64) as usize])
        }
    }
}

/// The workspace's deterministic generator: xoshiro256++.
///
/// 256 bits of state, period `2^256 - 1`, and sub-nanosecond steps;
/// statistically robust for simulation workloads (this is not a
/// cryptographic generator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QensRng {
    s: [u64; 4],
}

impl QensRng {
    /// Seeds the full 256-bit state from `seed` via SplitMix64, as the
    /// xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl Rng for QensRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Builds a deterministic RNG for a `(seed, stream)` pair.
pub fn rng_for(seed: u64, stream: u64) -> QensRng {
    QensRng::seed_from_u64(derive_seed(seed, stream))
}

/// Fills `out` with standard-normal samples (Box–Muller transform).
pub fn fill_standard_normal(rng: &mut impl Rng, out: &mut [f64]) {
    let mut i = 0;
    while i < out.len() {
        // Draw u1 in (0,1] to keep ln() finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        out[i] = r * theta.cos();
        i += 1;
        if i < out.len() {
            out[i] = r * theta.sin();
            i += 1;
        }
    }
}

/// A single standard-normal sample.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let mut buf = [0.0];
    fill_standard_normal(rng, &mut buf);
    buf[0]
}

/// A normal sample with the given mean and standard deviation.
pub fn normal(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn derive_seed_is_deterministic_and_stream_sensitive() {
        assert_eq!(derive_seed(42, 1), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut a = rng_for(7, 3);
        let mut b = rng_for(7, 3);
        let xa: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xa, xb);
    }

    #[test]
    fn distinct_streams_diverge() {
        let mut a = rng_for(7, 3);
        let mut b = rng_for(7, 4);
        let xa: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = rng_for(11, 0);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x), "sample {x} outside [0,1)");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rng_for(2, 2);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(5..=9u64);
            assert!((5..=9).contains(&j));
            let x = rng.gen_range(-2.5..4.0);
            assert!((-2.5..4.0).contains(&x));
            let y = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_every_bucket() {
        let mut rng = rng_for(3, 3);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some buckets never hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rng_for(9, 9);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50 elements staying sorted is ~impossible");
    }

    #[test]
    fn choose_returns_member_or_none() {
        let mut rng = rng_for(4, 1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let xs = [10, 20, 30];
        for _ in 0..100 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = rng_for(6, 6);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn standard_normal_moments_are_plausible() {
        let mut rng = rng_for(123, 0);
        let mut xs = vec![0.0; 20_000];
        fill_standard_normal(&mut rng, &mut xs);
        assert!(stats::mean(&xs).abs() < 0.03, "mean {}", stats::mean(&xs));
        assert!(
            (stats::std_dev(&xs) - 1.0).abs() < 0.03,
            "std {}",
            stats::std_dev(&xs)
        );
    }

    #[test]
    fn fill_standard_normal_handles_odd_lengths() {
        let mut rng = rng_for(1, 1);
        let mut xs = vec![0.0; 7];
        fill_standard_normal(&mut rng, &mut xs);
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = rng_for(5, 5);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        assert!((stats::mean(&xs) - 10.0).abs() < 0.1);
        assert!((stats::std_dev(&xs) - 2.0).abs() < 0.1);
    }
}
