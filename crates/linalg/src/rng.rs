//! Seed plumbing for reproducible experiments.
//!
//! Every stochastic subsystem in the workspace (data generation, k-means
//! initialisation, model weight init, random node selection, query
//! workloads) receives its own derived seed so that changing one
//! subsystem's consumption pattern does not perturb the others.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives a child seed from a parent seed and a stream label.
///
/// Uses the SplitMix64 finaliser, which is a bijective avalanche mix — two
/// different `(seed, stream)` pairs essentially never collide in practice.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a deterministic RNG for a `(seed, stream)` pair.
pub fn rng_for(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(seed, stream))
}

/// Fills `out` with standard-normal samples (Box–Muller transform).
pub fn fill_standard_normal(rng: &mut impl Rng, out: &mut [f64]) {
    let mut i = 0;
    while i < out.len() {
        // Draw u1 in (0,1] to keep ln() finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        out[i] = r * theta.cos();
        i += 1;
        if i < out.len() {
            out[i] = r * theta.sin();
            i += 1;
        }
    }
}

/// A single standard-normal sample.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let mut buf = [0.0];
    fill_standard_normal(rng, &mut buf);
    buf[0]
}

/// A normal sample with the given mean and standard deviation.
pub fn normal(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn derive_seed_is_deterministic_and_stream_sensitive() {
        assert_eq!(derive_seed(42, 1), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut a = rng_for(7, 3);
        let mut b = rng_for(7, 3);
        let xa: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xa, xb);
    }

    #[test]
    fn standard_normal_moments_are_plausible() {
        let mut rng = rng_for(123, 0);
        let mut xs = vec![0.0; 20_000];
        fill_standard_normal(&mut rng, &mut xs);
        assert!(stats::mean(&xs).abs() < 0.03, "mean {}", stats::mean(&xs));
        assert!((stats::std_dev(&xs) - 1.0).abs() < 0.03, "std {}", stats::std_dev(&xs));
    }

    #[test]
    fn fill_standard_normal_handles_odd_lengths() {
        let mut rng = rng_for(1, 1);
        let mut xs = vec![0.0; 7];
        fill_standard_normal(&mut rng, &mut xs);
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = rng_for(5, 5);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        assert!((stats::mean(&xs) - 10.0).abs() < 0.1);
        assert!((stats::std_dev(&xs) - 2.0).abs() < 0.1);
    }
}
