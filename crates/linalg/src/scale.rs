//! Feature scalers with fit/transform/inverse-transform.
//!
//! The paper standardises per-node features before clustering and model
//! training (the Keras pipelines it replaces do the same). Both scalers
//! operate column-wise on a [`Matrix`].

use crate::stats;
use crate::Matrix;

/// Column-wise standard-score scaler: `x' = (x - mean) / std`.
///
/// Columns with zero standard deviation are passed through shifted by their
/// mean only, so constant features do not produce NaNs.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler to a data matrix.
    ///
    /// # Panics
    /// Panics if `data` has no rows.
    pub fn fit(data: &Matrix) -> Self {
        assert!(
            data.rows() > 0,
            "cannot fit StandardScaler on an empty matrix"
        );
        Self {
            means: stats::column_means(data),
            stds: stats::column_std_devs(data),
        }
    }

    /// Per-column means captured at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column standard deviations captured at fit time.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Transforms a matrix into standard-score space.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(
            data.cols(),
            self.means.len(),
            "scaler fitted on different width"
        );
        let mut out = data.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((x, &mu), &sd) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *x = if sd > 0.0 { (*x - mu) / sd } else { *x - mu };
            }
        }
        out
    }

    /// Inverse of [`StandardScaler::transform`].
    pub fn inverse_transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(
            data.cols(),
            self.means.len(),
            "scaler fitted on different width"
        );
        let mut out = data.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((x, &mu), &sd) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *x = if sd > 0.0 { *x * sd + mu } else { *x + mu };
            }
        }
        out
    }

    /// Transforms a single value in column `col`.
    pub fn transform_value(&self, col: usize, x: f64) -> f64 {
        let sd = self.stds[col];
        if sd > 0.0 {
            (x - self.means[col]) / sd
        } else {
            x - self.means[col]
        }
    }

    /// Inverse-transforms a single value in column `col`.
    pub fn inverse_value(&self, col: usize, x: f64) -> f64 {
        let sd = self.stds[col];
        if sd > 0.0 {
            x * sd + self.means[col]
        } else {
            x + self.means[col]
        }
    }
}

/// Column-wise min-max scaler mapping each column onto `[0, 1]`.
///
/// Constant columns map to `0.0`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MinMaxScaler {
    bounds: Vec<(f64, f64)>,
}

impl MinMaxScaler {
    /// Fits the scaler to a data matrix.
    ///
    /// # Panics
    /// Panics if `data` has no rows.
    pub fn fit(data: &Matrix) -> Self {
        Self {
            bounds: stats::column_min_max(data),
        }
    }

    /// Per-column `(min, max)` captured at fit time.
    pub fn bounds(&self) -> &[(f64, f64)] {
        &self.bounds
    }

    /// Transforms a matrix onto `[0, 1]` per column (values outside the
    /// fitted range extrapolate linearly outside `[0, 1]`).
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(
            data.cols(),
            self.bounds.len(),
            "scaler fitted on different width"
        );
        let mut out = data.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (x, &(lo, hi)) in row.iter_mut().zip(&self.bounds) {
                let span = hi - lo;
                *x = if span > 0.0 { (*x - lo) / span } else { 0.0 };
            }
        }
        out
    }

    /// Inverse of [`MinMaxScaler::transform`].
    pub fn inverse_transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(
            data.cols(),
            self.bounds.len(),
            "scaler fitted on different width"
        );
        let mut out = data.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (x, &(lo, hi)) in row.iter_mut().zip(&self.bounds) {
                let span = hi - lo;
                *x = if span > 0.0 { *x * span + lo } else { lo };
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 200.0]])
    }

    #[test]
    fn standard_scaler_centres_and_normalises() {
        let m = sample();
        let sc = StandardScaler::fit(&m);
        let t = sc.transform(&m);
        let means = stats::column_means(&t);
        let stds = stats::column_std_devs(&t);
        for mu in means {
            assert!(mu.abs() < 1e-12);
        }
        for sd in stds {
            assert!((sd - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standard_scaler_round_trips() {
        let m = sample();
        let sc = StandardScaler::fit(&m);
        let back = sc.inverse_transform(&sc.transform(&m));
        for (a, b) in back.as_slice().iter().zip(m.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn standard_scaler_handles_constant_columns() {
        let m = Matrix::from_rows(&[vec![7.0], vec![7.0]]);
        let sc = StandardScaler::fit(&m);
        let t = sc.transform(&m);
        assert!(t.all_finite());
        assert_eq!(t.as_slice(), &[0.0, 0.0]);
        assert_eq!(sc.inverse_transform(&t).as_slice(), &[7.0, 7.0]);
    }

    #[test]
    fn scalar_value_paths_match_matrix_paths() {
        let m = sample();
        let sc = StandardScaler::fit(&m);
        let t = sc.transform(&m);
        assert!((sc.transform_value(0, 3.0) - t[(1, 0)]).abs() < 1e-12);
        assert!((sc.inverse_value(0, t[(1, 0)]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn minmax_scaler_maps_to_unit_interval() {
        let m = sample();
        let sc = MinMaxScaler::fit(&m);
        let t = sc.transform(&m);
        assert_eq!(stats::column_min_max(&t), vec![(0.0, 1.0), (0.0, 1.0)]);
    }

    #[test]
    fn minmax_scaler_round_trips() {
        let m = sample();
        let sc = MinMaxScaler::fit(&m);
        let back = sc.inverse_transform(&sc.transform(&m));
        for (a, b) in back.as_slice().iter().zip(m.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn minmax_scaler_constant_column_is_stable() {
        let m = Matrix::from_rows(&[vec![4.0], vec![4.0]]);
        let sc = MinMaxScaler::fit(&m);
        let t = sc.transform(&m);
        assert_eq!(t.as_slice(), &[0.0, 0.0]);
        assert_eq!(sc.inverse_transform(&t).as_slice(), &[4.0, 4.0]);
    }
}
