//! Property-style tests for the linalg substrate.
//!
//! Each test sweeps a few hundred pseudo-random cases drawn from the
//! in-tree deterministic RNG — same coverage shape as the previous
//! proptest suite, but reproducible bit-for-bit and dependency-free.

use linalg::rng::{rng_for, Rng};
use linalg::{matrix::Matrix, ops, scale::MinMaxScaler, scale::StandardScaler, stats};

const CASES: usize = 200;

fn random_matrix(rng: &mut impl Rng, max_rows: usize, max_cols: usize) -> Matrix {
    let r = rng.gen_range(1..=max_rows);
    let c = rng.gen_range(1..=max_cols);
    let data: Vec<f64> = (0..r * c).map(|_| rng.gen_range(-1e6..1e6)).collect();
    Matrix::from_vec(r, c, data)
}

fn random_vec(rng: &mut impl Rng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-1e6..1e6)).collect()
}

fn vec_pair(rng: &mut impl Rng, max_len: usize) -> (Vec<f64>, Vec<f64>) {
    let n = rng.gen_range(1..=max_len);
    (random_vec(rng, n), random_vec(rng, n))
}

#[test]
fn transpose_is_an_involution() {
    let mut rng = rng_for(0xA110, 1);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng, 12, 12);
        assert_eq!(m.transpose().transpose(), m);
    }
}

#[test]
fn matmul_with_identity_is_identity() {
    let mut rng = rng_for(0xA110, 2);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng, 8, 8);
        let i = Matrix::identity(m.cols());
        let p = m.matmul(&i);
        for (a, b) in p.as_slice().iter().zip(m.as_slice()) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0));
        }
    }
}

#[test]
fn matmul_transpose_identity() {
    // (A B)^T == B^T A^T.
    let mut rng = rng_for(0xA110, 3);
    for _ in 0..CASES {
        let (m, k, n) = (
            rng.gen_range(1..=6usize),
            rng.gen_range(1..=6usize),
            rng.gen_range(1..=6usize),
        );
        let a = Matrix::from_vec(m, k, (0..m * k).map(|_| rng.gen_range(-1e3..1e3)).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|_| rng.gen_range(-1e3..1e3)).collect());
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_eq!(lhs.shape(), rhs.shape());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((x - y).abs() <= 1e-6 * y.abs().max(1.0));
        }
    }
}

#[test]
fn dot_is_commutative() {
    let mut rng = rng_for(0xA110, 4);
    for _ in 0..CASES {
        let (a, b) = vec_pair(&mut rng, 64);
        let ab = ops::dot(&a, &b);
        let ba = ops::dot(&b, &a);
        assert!((ab - ba).abs() <= 1e-9 * ab.abs().max(1.0));
    }
}

#[test]
fn squared_distance_is_symmetric_and_nonnegative() {
    let mut rng = rng_for(0xA110, 5);
    for _ in 0..CASES {
        let (a, b) = vec_pair(&mut rng, 64);
        let d1 = ops::squared_distance(&a, &b);
        let d2 = ops::squared_distance(&b, &a);
        assert!(d1 >= 0.0);
        assert!((d1 - d2).abs() <= 1e-9 * d1.max(1.0));
        assert_eq!(ops::squared_distance(&a, &a), 0.0);
    }
}

#[test]
fn triangle_inequality() {
    let mut rng = rng_for(0xA110, 6);
    for _ in 0..CASES {
        let (a, b) = vec_pair(&mut rng, 32);
        let t = rng.gen_range(0.0..1.0);
        let mid = ops::lerp(&a, &b, t);
        let direct = ops::distance(&a, &b);
        let via = ops::distance(&a, &mid) + ops::distance(&mid, &b);
        assert!(via <= direct + 1e-6 * direct.max(1.0));
    }
}

#[test]
fn standard_scaler_round_trip() {
    let mut rng = rng_for(0xA110, 7);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng, 16, 8);
        let sc = StandardScaler::fit(&m);
        let back = sc.inverse_transform(&sc.transform(&m));
        for (a, b) in back.as_slice().iter().zip(m.as_slice()) {
            assert!((a - b).abs() <= 1e-6 * b.abs().max(1.0));
        }
    }
}

#[test]
fn minmax_scaler_output_in_unit_interval() {
    let mut rng = rng_for(0xA110, 8);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng, 16, 8);
        let sc = MinMaxScaler::fit(&m);
        let t = sc.transform(&m);
        for &x in t.as_slice() {
            assert!((-1e-12..=1.0 + 1e-12).contains(&x), "{x} outside [0,1]");
        }
    }
}

#[test]
fn percentile_is_monotone() {
    let mut rng = rng_for(0xA110, 9);
    for _ in 0..CASES {
        let n = rng.gen_range(1..=128usize);
        let xs = random_vec(&mut rng, n);
        let p1 = rng.gen_range(0.0..100.0);
        let p2 = rng.gen_range(0.0..100.0);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = stats::percentile(&xs, lo).unwrap();
        let b = stats::percentile(&xs, hi).unwrap();
        assert!(a <= b + 1e-9);
    }
}

#[test]
fn pearson_is_bounded() {
    let mut rng = rng_for(0xA110, 10);
    for _ in 0..CASES {
        let (a, b) = vec_pair(&mut rng, 64);
        let r = stats::pearson(&a, &b);
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
    }
}

#[test]
fn column_stats_consistent_with_slice_stats() {
    let mut rng = rng_for(0xA110, 11);
    for _ in 0..CASES {
        let m = random_matrix(&mut rng, 16, 4);
        let means = stats::column_means(&m);
        for (c, &mu) in means.iter().enumerate() {
            let col = m.col(c);
            assert!((mu - stats::mean(&col)).abs() <= 1e-9 * mu.abs().max(1.0));
        }
    }
}
