//! Property-based tests for the linalg substrate.

use linalg::{matrix::Matrix, ops, scale::MinMaxScaler, scale::StandardScaler, stats};
use proptest::prelude::*;

/// Strategy: a non-empty matrix with bounded dimensions and finite values.
fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-1e6_f64..1e6, r * c).prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn vec_pair(max_len: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1..=max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(-1e6_f64..1e6, n),
            prop::collection::vec(-1e6_f64..1e6, n),
        )
    })
}

proptest! {
    #[test]
    fn transpose_is_an_involution(m in matrix_strategy(12, 12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_with_identity_is_identity(m in matrix_strategy(8, 8)) {
        let i = Matrix::identity(m.cols());
        let p = m.matmul(&i);
        for (a, b) in p.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0));
        }
    }

    #[test]
    fn matmul_transpose_identity((a, b) in (1..=6usize, 1..=6usize, 1..=6usize).prop_flat_map(|(m, k, n)| {
        (
            prop::collection::vec(-1e3_f64..1e3, m * k).prop_map(move |d| Matrix::from_vec(m, k, d)),
            prop::collection::vec(-1e3_f64..1e3, k * n).prop_map(move |d| Matrix::from_vec(k, n, d)),
        )
    })) {
        // (A B)^T == B^T A^T.
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert_eq!(lhs.shape(), rhs.shape());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-6 * y.abs().max(1.0));
        }
    }

    #[test]
    fn dot_is_commutative((a, b) in vec_pair(64)) {
        let ab = ops::dot(&a, &b);
        let ba = ops::dot(&b, &a);
        prop_assert!((ab - ba).abs() <= 1e-9 * ab.abs().max(1.0));
    }

    #[test]
    fn squared_distance_is_symmetric_and_nonnegative((a, b) in vec_pair(64)) {
        let d1 = ops::squared_distance(&a, &b);
        let d2 = ops::squared_distance(&b, &a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() <= 1e-9 * d1.max(1.0));
        prop_assert_eq!(ops::squared_distance(&a, &a), 0.0);
    }

    #[test]
    fn triangle_inequality((a, b) in vec_pair(32), t in 0.0_f64..1.0) {
        let mid = ops::lerp(&a, &b, t);
        let direct = ops::distance(&a, &b);
        let via = ops::distance(&a, &mid) + ops::distance(&mid, &b);
        prop_assert!(via <= direct + 1e-6 * direct.max(1.0));
    }

    #[test]
    fn standard_scaler_round_trip(m in matrix_strategy(16, 8)) {
        let sc = StandardScaler::fit(&m);
        let back = sc.inverse_transform(&sc.transform(&m));
        for (a, b) in back.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-6 * b.abs().max(1.0));
        }
    }

    #[test]
    fn minmax_scaler_output_in_unit_interval(m in matrix_strategy(16, 8)) {
        let sc = MinMaxScaler::fit(&m);
        let t = sc.transform(&m);
        for &x in t.as_slice() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&x), "{x} outside [0,1]");
        }
    }

    #[test]
    fn percentile_is_monotone(xs in prop::collection::vec(-1e6_f64..1e6, 1..128),
                              p1 in 0.0_f64..100.0, p2 in 0.0_f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = stats::percentile(&xs, lo).unwrap();
        let b = stats::percentile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn pearson_is_bounded((a, b) in vec_pair(64)) {
        let r = stats::pearson(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
    }

    #[test]
    fn column_stats_consistent_with_slice_stats(m in matrix_strategy(16, 4)) {
        let means = stats::column_means(&m);
        for (c, &mu) in means.iter().enumerate() {
            let col = m.col(c);
            prop_assert!((mu - stats::mean(&col)).abs() <= 1e-9 * mu.abs().max(1.0));
        }
    }
}
