//! Deterministic, seeded fault injection for the simulated edge
//! federation.
//!
//! The paper's premise (§III-A) is that edge nodes are unreliable,
//! resource-constrained participants — yet an un-instrumented simulator
//! only ever exercises the happy path. This crate is the chaos layer:
//! a [`FaultSpec`] describes *how much* chaos to inject (per-node
//! dropout probability, straggler slowdown distributions, transient
//! link-loss probability, crash-at-round schedules) and a [`FaultPlan`]
//! turns it into a **pure deterministic oracle** — every injected event
//! is a function of `(seed, query, node, round, attempt)` only, computed
//! through the in-tree xoshiro/SplitMix64 mix, so:
//!
//! * the same seed produces the same faults on every platform, for any
//!   thread count and any order of evaluation (the oracle is `&self`
//!   and never consumes shared RNG state);
//! * two queries with different ids see different (but individually
//!   reproducible) fault patterns;
//! * a [`FaultTrace`] of what actually fired can be compared
//!   byte-for-byte across runs — the workspace's determinism invariant
//!   extended to failure scenarios.
//!
//! The *reaction* policies live here too: [`RetryPolicy`] (capped
//! exponential backoff for lost transfers), [`Quorum`] (how many
//! survivors a round needs) and the combined [`FaultTolerance`]
//! knob consumed by `fedlearn`'s round engine.
//!
//! The crate is std-only and depends only on `linalg` (for the RNG
//! derivation), so it can sit below `edgesim` in the crate graph.

pub mod plan;
pub mod spec;
pub mod trace;

pub use plan::{FaultPlan, ParticipantFate};
pub use spec::{FaultSpec, FaultTolerance, Quorum, RetryPolicy};
pub use trace::{FaultEvent, FaultTrace};
