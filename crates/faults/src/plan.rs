//! The deterministic fault oracle.

use linalg::rng::{self as lrng, Rng};

use crate::spec::FaultSpec;

/// Distinguishes the independent per-event random streams. Each label is
/// mixed into the seed derivation so dropout, straggler and link draws
/// never correlate.
const STREAM_DROPOUT: u64 = 0xD201;
const STREAM_STRAGGLER: u64 = 0xD202;
const STREAM_SLOWDOWN: u64 = 0xD203;
const STREAM_LINK: u64 = 0xD204;

/// What the plan decreed for one participant in one round, *before*
/// training starts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParticipantFate {
    /// The node is permanently dead (crash schedule reached).
    Crashed,
    /// The node silently misses this round (transient).
    Dropped,
    /// The node trains; `slowdown >= 1` scales its simulated training
    /// time (1.0 = healthy, > 1.0 = straggler).
    Participates {
        /// Simulated-time multiplier on local training.
        slowdown: f64,
    },
}

/// A fully deterministic fault plan for one query's federation rounds.
///
/// The plan is a **pure oracle**: every method takes `&self` and
/// computes its answer from `(seed, query, node, round, attempt)` alone
/// through the SplitMix64/xoshiro derivation chain — no interior
/// mutability, no shared RNG stream, no evaluation-order sensitivity.
/// That is what makes the workspace's determinism invariant ("same seed
/// ⇒ same everything, for any `QENS_THREADS`") extend to fault
/// scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    spec: FaultSpec,
    /// Population size the plan covers (all nodes, not just the
    /// selected cohort — promoted standbys consult the same plan).
    n_nodes: usize,
    /// `derive_seed(spec.seed, query_id)` — two queries under the same
    /// spec see different, individually reproducible fault patterns.
    query_seed: u64,
}

impl FaultPlan {
    /// Builds the plan for one query over an `n_nodes` population.
    ///
    /// # Panics
    /// Panics if the spec fails [`FaultSpec::validate`] — the spec is
    /// caller input and an invalid probability would silently skew every
    /// draw.
    pub fn for_query(spec: FaultSpec, n_nodes: usize, query_id: u64) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid FaultSpec: {e}");
        }
        let query_seed = lrng::derive_seed(spec.seed, query_id ^ 0xFA17_5EED);
        Self {
            spec,
            n_nodes,
            query_seed,
        }
    }

    /// The spec the plan was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Population size the plan covers.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// True when the plan can never fire an event.
    pub fn is_inert(&self) -> bool {
        self.spec.is_inert()
    }

    /// One deterministic uniform draw in `[0, 1)` for an event key.
    fn draw(&self, stream: u64, node: usize, round: usize, extra: u64) -> f64 {
        let key = stream
            ^ ((node as u64) << 20)
            ^ ((round as u64) << 44)
            ^ extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        lrng::rng_for(self.query_seed, key).gen::<f64>()
    }

    /// Whether the crash schedule has permanently killed `node` by
    /// `round` (inclusive).
    pub fn crashed(&self, node: usize, round: usize) -> bool {
        self.spec
            .crash_at_round
            .iter()
            .any(|&(n, k)| n == node && round >= k)
    }

    /// Whether `node` transiently drops out of `round`.
    pub fn drops_out(&self, node: usize, round: usize) -> bool {
        self.spec.dropout_probability > 0.0
            && self.draw(STREAM_DROPOUT, node, round, 0) < self.spec.dropout_probability
    }

    /// The training slowdown factor for `node` in `round` (1.0 when the
    /// node is healthy; drawn uniformly from the spec's range when it
    /// straggles).
    pub fn slowdown(&self, node: usize, round: usize) -> f64 {
        if self.spec.straggler_probability > 0.0
            && self.draw(STREAM_STRAGGLER, node, round, 0) < self.spec.straggler_probability
        {
            let (lo, hi) = self.spec.straggler_slowdown;
            lo + self.draw(STREAM_SLOWDOWN, node, round, 0) * (hi - lo)
        } else {
            1.0
        }
    }

    /// The participant's fate for one round, combining the crash
    /// schedule, the dropout draw and the straggler draw.
    pub fn fate(&self, node: usize, round: usize) -> ParticipantFate {
        if self.crashed(node, round) {
            ParticipantFate::Crashed
        } else if self.drops_out(node, round) {
            ParticipantFate::Dropped
        } else {
            ParticipantFate::Participates {
                slowdown: self.slowdown(node, round),
            }
        }
    }

    /// Whether transfer attempt `attempt` (0-based) from `node` in
    /// `round` is lost on the wire. Each attempt is an independent
    /// deterministic draw, so a retry loop simply increments `attempt`.
    pub fn transfer_attempt_fails(&self, node: usize, round: usize, attempt: usize) -> bool {
        self.spec.link_loss_probability > 0.0
            && self.draw(STREAM_LINK, node, round, attempt as u64 + 1)
                < self.spec.link_loss_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(p: FaultSpec) -> FaultPlan {
        FaultPlan::for_query(p, 16, 7)
    }

    #[test]
    fn inert_plan_never_fires() {
        let p = plan(FaultSpec::none());
        assert!(p.is_inert());
        for node in 0..16 {
            for round in 0..4 {
                assert_eq!(
                    p.fate(node, round),
                    ParticipantFate::Participates { slowdown: 1.0 }
                );
                for attempt in 0..8 {
                    assert!(!p.transfer_attempt_fails(node, round, attempt));
                }
            }
        }
    }

    #[test]
    fn oracle_is_deterministic_and_order_independent() {
        let a = plan(FaultSpec::unreliable_edge(42));
        let b = plan(FaultSpec::unreliable_edge(42));
        // Query ids and seeds fully determine the answers; evaluation
        // order is irrelevant (pure functions).
        let mut forward = Vec::new();
        for node in 0..16 {
            for round in 0..3 {
                forward.push((
                    a.fate(node, round),
                    a.transfer_attempt_fails(node, round, 2),
                ));
            }
        }
        let mut backward = Vec::new();
        for node in (0..16).rev() {
            for round in (0..3).rev() {
                backward.push((
                    b.fate(node, round),
                    b.transfer_attempt_fails(node, round, 2),
                ));
            }
        }
        backward.reverse();
        // Rows were collected (node-major) in opposite orders; align.
        let mut backward_aligned = vec![backward[0]; backward.len()];
        let rounds = 3;
        for (i, item) in backward.iter().enumerate() {
            let node = i / rounds;
            let round = i % rounds;
            backward_aligned[node * rounds + round] = *item;
        }
        assert_eq!(forward, backward_aligned);
    }

    #[test]
    fn different_queries_see_different_patterns() {
        let spec = FaultSpec::dropout(11, 0.5);
        let a = FaultPlan::for_query(spec.clone(), 32, 1);
        let b = FaultPlan::for_query(spec, 32, 2);
        let fa: Vec<bool> = (0..32).map(|n| a.drops_out(n, 0)).collect();
        let fb: Vec<bool> = (0..32).map(|n| b.drops_out(n, 0)).collect();
        assert_ne!(fa, fb, "distinct query ids must decorrelate the draws");
    }

    #[test]
    fn dropout_rate_tracks_probability() {
        let p = plan(FaultSpec::dropout(3, 0.3));
        let hits = (0..4000).filter(|&i| p.drops_out(i % 16, i / 16)).count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.3).abs() < 0.05, "observed dropout rate {rate}");
    }

    #[test]
    fn link_loss_rate_tracks_probability_and_attempts_are_independent() {
        let p = plan(FaultSpec::none().with_link_loss(0.25));
        let hits = (0..4000)
            .filter(|&i| p.transfer_attempt_fails(i % 16, 0, i / 16))
            .count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "observed loss rate {rate}");
        // A node whose first attempt fails must not fail all retries.
        let mut saw_recovery = false;
        for node in 0..16 {
            if p.transfer_attempt_fails(node, 0, 0) && !p.transfer_attempt_fails(node, 0, 1) {
                saw_recovery = true;
            }
        }
        assert!(
            saw_recovery,
            "retries never recovered — attempts correlated?"
        );
    }

    #[test]
    fn slowdowns_stay_in_range() {
        let p = plan(FaultSpec::none().with_stragglers(0.5, (2.0, 6.0)));
        let mut straggled = 0;
        for node in 0..16 {
            for round in 0..16 {
                let s = p.slowdown(node, round);
                if s > 1.0 {
                    straggled += 1;
                    assert!((2.0..=6.0).contains(&s), "slowdown {s} out of range");
                } else {
                    assert_eq!(s, 1.0);
                }
            }
        }
        assert!(straggled > 0, "0.5 straggler probability never fired");
    }

    #[test]
    fn crash_schedule_is_permanent_and_dominates() {
        let p = plan(FaultSpec::none().with_crash(3, 2));
        assert!(!p.crashed(3, 0));
        assert!(!p.crashed(3, 1));
        assert!(p.crashed(3, 2));
        assert!(p.crashed(3, 7));
        assert!(!p.crashed(4, 7));
        assert_eq!(p.fate(3, 5), ParticipantFate::Crashed);
    }

    #[test]
    #[should_panic(expected = "invalid FaultSpec")]
    fn invalid_spec_is_rejected() {
        plan(FaultSpec::dropout(0, 2.0));
    }
}
