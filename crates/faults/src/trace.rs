//! The record of what actually fired.

/// One injected-fault (or fault-reaction) event, in simulated time.
///
/// Every field is a simulated quantity — node indices, round numbers,
/// attempt counts, simulated seconds — never wall-clock time, so a trace
/// is bit-identical across runs and thread counts for a given seed.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultEvent {
    /// A participant silently missed one round.
    Dropout {
        /// Node index.
        node: usize,
        /// Communication round.
        round: usize,
    },
    /// A participant hit its crash schedule and is permanently dead.
    Crash {
        /// Node index.
        node: usize,
        /// Communication round.
        round: usize,
    },
    /// A participant trained `slowdown`× slower than its healthy rate.
    Straggler {
        /// Node index.
        node: usize,
        /// Communication round.
        round: usize,
        /// Simulated-time multiplier (> 1).
        slowdown: f64,
    },
    /// One model-transfer attempt was lost on the wire.
    LinkLoss {
        /// Node index.
        node: usize,
        /// Communication round.
        round: usize,
        /// 0-based attempt number that was lost.
        attempt: usize,
    },
    /// A transfer eventually succeeded after `retries` lost attempts.
    RetrySuccess {
        /// Node index.
        node: usize,
        /// Communication round.
        round: usize,
        /// Lost attempts before the success.
        retries: usize,
    },
    /// A transfer exhausted its retry budget; the participant's report
    /// never reached the leader this round.
    TransferFailed {
        /// Node index.
        node: usize,
        /// Communication round.
        round: usize,
        /// Attempts made (all lost).
        attempts: usize,
    },
    /// The leader stopped waiting for a participant at the straggler
    /// deadline; its (completed) work was discarded for this round.
    DeadlineMiss {
        /// Node index.
        node: usize,
        /// Communication round.
        round: usize,
        /// The configured deadline in simulated seconds.
        deadline_seconds: f64,
        /// When the participant would actually have finished.
        finish_seconds: f64,
    },
    /// A standby node was promoted from the ranked tail to cover a
    /// failed participant.
    Replacement {
        /// The promoted standby's node index.
        standby: usize,
        /// Communication round of the promotion.
        round: usize,
    },
    /// The round ended below quorum even after exhausting the standby
    /// list.
    QuorumLost {
        /// Communication round.
        round: usize,
        /// Participants that reported.
        survivors: usize,
        /// Quorum the round needed.
        required: usize,
    },
}

impl FaultEvent {
    /// Stable lowercase tag used in the JSON export.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultEvent::Dropout { .. } => "dropout",
            FaultEvent::Crash { .. } => "crash",
            FaultEvent::Straggler { .. } => "straggler",
            FaultEvent::LinkLoss { .. } => "link_loss",
            FaultEvent::RetrySuccess { .. } => "retry_success",
            FaultEvent::TransferFailed { .. } => "transfer_failed",
            FaultEvent::DeadlineMiss { .. } => "deadline_miss",
            FaultEvent::Replacement { .. } => "replacement",
            FaultEvent::QuorumLost { .. } => "quorum_lost",
        }
    }

    /// Serialises one event as a deterministic JSON object (fixed key
    /// order, floats via `{:?}` — shortest round-trip form).
    fn to_json(&self) -> String {
        match self {
            FaultEvent::Dropout { node, round } => {
                format!("{{\"kind\":\"dropout\",\"node\":{node},\"round\":{round}}}")
            }
            FaultEvent::Crash { node, round } => {
                format!("{{\"kind\":\"crash\",\"node\":{node},\"round\":{round}}}")
            }
            FaultEvent::Straggler {
                node,
                round,
                slowdown,
            } => format!(
                "{{\"kind\":\"straggler\",\"node\":{node},\"round\":{round},\"slowdown\":{slowdown:?}}}"
            ),
            FaultEvent::LinkLoss {
                node,
                round,
                attempt,
            } => format!(
                "{{\"kind\":\"link_loss\",\"node\":{node},\"round\":{round},\"attempt\":{attempt}}}"
            ),
            FaultEvent::RetrySuccess {
                node,
                round,
                retries,
            } => format!(
                "{{\"kind\":\"retry_success\",\"node\":{node},\"round\":{round},\"retries\":{retries}}}"
            ),
            FaultEvent::TransferFailed {
                node,
                round,
                attempts,
            } => format!(
                "{{\"kind\":\"transfer_failed\",\"node\":{node},\"round\":{round},\"attempts\":{attempts}}}"
            ),
            FaultEvent::DeadlineMiss {
                node,
                round,
                deadline_seconds,
                finish_seconds,
            } => format!(
                "{{\"kind\":\"deadline_miss\",\"node\":{node},\"round\":{round},\
                 \"deadline_seconds\":{deadline_seconds:?},\"finish_seconds\":{finish_seconds:?}}}"
            ),
            FaultEvent::Replacement { standby, round } => {
                format!("{{\"kind\":\"replacement\",\"standby\":{standby},\"round\":{round}}}")
            }
            FaultEvent::QuorumLost {
                round,
                survivors,
                required,
            } => format!(
                "{{\"kind\":\"quorum_lost\",\"round\":{round},\"survivors\":{survivors},\"required\":{required}}}"
            ),
        }
    }
}

/// The ordered record of every fault that fired during one query's
/// federation. Collected serially at the leader (fault decisions are
/// simulated-time, not wall-time), so the order — and therefore the
/// JSON export — is bit-identical across runs and thread counts.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultTrace {
    /// Events in leader observation order.
    pub events: Vec<FaultEvent>,
}

impl FaultTrace {
    /// Records one event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing fired.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind (see [`FaultEvent::kind`]).
    pub fn count(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind() == kind).count()
    }

    /// Deterministic JSON export: an array of fixed-key-order objects.
    /// Two runs with the same seed produce byte-identical output — the
    /// seed-stability check in `scripts/verify.sh` diffs exactly this.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultTrace {
        let mut t = FaultTrace::default();
        t.push(FaultEvent::Dropout { node: 1, round: 0 });
        t.push(FaultEvent::Straggler {
            node: 2,
            round: 0,
            slowdown: 3.5,
        });
        t.push(FaultEvent::LinkLoss {
            node: 2,
            round: 0,
            attempt: 0,
        });
        t.push(FaultEvent::RetrySuccess {
            node: 2,
            round: 0,
            retries: 1,
        });
        t.push(FaultEvent::Replacement {
            standby: 4,
            round: 0,
        });
        t
    }

    #[test]
    fn counts_by_kind() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.count("dropout"), 1);
        assert_eq!(t.count("link_loss"), 1);
        assert_eq!(t.count("crash"), 0);
        assert!(FaultTrace::default().is_empty());
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with('[') && a.ends_with(']'));
        assert!(a.contains("\"kind\":\"dropout\",\"node\":1,\"round\":0"));
        assert!(a.contains("\"slowdown\":3.5"));
        assert_eq!(FaultTrace::default().to_json(), "[]");
        // Balanced braces (cheap well-formedness probe).
        assert_eq!(
            a.matches('{').count(),
            a.matches('}').count(),
            "unbalanced JSON: {a}"
        );
    }

    #[test]
    fn every_event_kind_serialises() {
        let events = [
            FaultEvent::Dropout { node: 0, round: 0 },
            FaultEvent::Crash { node: 0, round: 1 },
            FaultEvent::Straggler {
                node: 0,
                round: 0,
                slowdown: 2.0,
            },
            FaultEvent::LinkLoss {
                node: 0,
                round: 0,
                attempt: 3,
            },
            FaultEvent::RetrySuccess {
                node: 0,
                round: 0,
                retries: 2,
            },
            FaultEvent::TransferFailed {
                node: 0,
                round: 0,
                attempts: 3,
            },
            FaultEvent::DeadlineMiss {
                node: 0,
                round: 0,
                deadline_seconds: 5.0,
                finish_seconds: 9.25,
            },
            FaultEvent::Replacement {
                standby: 1,
                round: 0,
            },
            FaultEvent::QuorumLost {
                round: 0,
                survivors: 0,
                required: 2,
            },
        ];
        for e in events {
            let mut t = FaultTrace::default();
            let kind = e.kind();
            t.push(e);
            let json = t.to_json();
            assert!(
                json.contains(&format!("\"kind\":\"{kind}\"")),
                "{kind} missing from {json}"
            );
        }
    }
}
