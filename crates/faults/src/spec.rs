//! What chaos to inject, and how the federation reacts to it.

/// Declarative description of the faults to inject into a federation.
///
/// All probabilities are per-event (per node-round for dropouts and
/// stragglers, per transfer attempt for link losses); `seed` fully
/// determines every draw through [`crate::FaultPlan`]'s pure oracle.
/// [`FaultSpec::none`] is the inert spec: zero probabilities, no crash
/// schedule — a plan built from it injects nothing and the round engine
/// behaves bit-identically to a fault-free run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultSpec {
    /// Seed driving every injected event (mixed with the query id, node
    /// id, round and attempt indices).
    pub seed: u64,
    /// Probability that a participant silently drops out for one round
    /// (selected, broadcast received, never reports). Transient: the
    /// node may participate again next round.
    pub dropout_probability: f64,
    /// Probability that a participant straggles for one round.
    pub straggler_probability: f64,
    /// Simulated-time slowdown factor range `[lo, hi]` (uniform draw,
    /// both `>= 1`) applied to a straggling participant's training.
    pub straggler_slowdown: (f64, f64),
    /// Probability that one model transfer *attempt* is lost on the
    /// wire (each retry redraws independently).
    pub link_loss_probability: f64,
    /// Permanent crashes: `(node_index, round)` — the node is dead from
    /// that communication round on (for the affected query's rounds and
    /// all later ones).
    pub crash_at_round: Vec<(usize, usize)>,
}

impl FaultSpec {
    /// The inert spec: nothing ever fires.
    pub fn none() -> Self {
        Self {
            seed: 0,
            dropout_probability: 0.0,
            straggler_probability: 0.0,
            straggler_slowdown: (1.0, 1.0),
            link_loss_probability: 0.0,
            crash_at_round: Vec::new(),
        }
    }

    /// A dropout-only spec (the Fig. 8-under-faults sweep axis).
    pub fn dropout(seed: u64, p: f64) -> Self {
        Self {
            seed,
            dropout_probability: p,
            ..Self::none()
        }
    }

    /// A moderately hostile edge deployment: occasional dropouts,
    /// stragglers running 2–6× slower, lossy links.
    pub fn unreliable_edge(seed: u64) -> Self {
        Self {
            seed,
            dropout_probability: 0.15,
            straggler_probability: 0.2,
            straggler_slowdown: (2.0, 6.0),
            link_loss_probability: 0.1,
            crash_at_round: Vec::new(),
        }
    }

    /// Sets the dropout probability.
    pub fn with_dropout(mut self, p: f64) -> Self {
        self.dropout_probability = p;
        self
    }

    /// Sets the per-attempt link-loss probability.
    pub fn with_link_loss(mut self, p: f64) -> Self {
        self.link_loss_probability = p;
        self
    }

    /// Sets the straggler probability and slowdown range.
    pub fn with_stragglers(mut self, p: f64, slowdown: (f64, f64)) -> Self {
        self.straggler_probability = p;
        self.straggler_slowdown = slowdown;
        self
    }

    /// Schedules a permanent crash of `node` at communication `round`.
    pub fn with_crash(mut self, node: usize, round: usize) -> Self {
        self.crash_at_round.push((node, round));
        self
    }

    /// True when no fault can ever fire (the plan is a no-op).
    pub fn is_inert(&self) -> bool {
        self.dropout_probability <= 0.0
            && self.straggler_probability <= 0.0
            && self.link_loss_probability <= 0.0
            && self.crash_at_round.is_empty()
    }

    /// Validates ranges, returning a human-readable complaint.
    ///
    /// Probabilities must lie in `[0, 1]` and slowdowns must be `>= 1`
    /// with a non-inverted range.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("dropout_probability", self.dropout_probability),
            ("straggler_probability", self.straggler_probability),
            ("link_loss_probability", self.link_loss_probability),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        let (lo, hi) = self.straggler_slowdown;
        if !(lo >= 1.0 && lo <= hi && hi.is_finite()) {
            return Err(format!(
                "straggler_slowdown range ({lo}, {hi}) invalid: need 1 <= lo <= hi < inf"
            ));
        }
        Ok(())
    }
}

/// Capped exponential backoff for retried model transfers.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RetryPolicy {
    /// Total transfer attempts per round (first try included); at least 1.
    pub max_attempts: usize,
    /// Simulated seconds waited before the first retry.
    pub base_backoff_seconds: f64,
    /// Multiplier applied per further retry.
    pub backoff_multiplier: f64,
    /// Ceiling on any single backoff wait.
    pub max_backoff_seconds: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_seconds: 0.5,
            backoff_multiplier: 2.0,
            max_backoff_seconds: 8.0,
        }
    }
}

impl RetryPolicy {
    /// Simulated seconds waited before retry number `retry` (1-based:
    /// the wait after the first failed attempt is `backoff_before(1)`).
    /// Capped at [`RetryPolicy::max_backoff_seconds`].
    pub fn backoff_before(&self, retry: usize) -> f64 {
        if retry == 0 {
            return 0.0;
        }
        let exp = self.backoff_multiplier.powi(retry as i32 - 1);
        (self.base_backoff_seconds * exp).min(self.max_backoff_seconds)
    }
}

/// How many survivors a communication round needs before the leader
/// aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Quorum {
    /// At least this many reporting participants (floored at 1).
    AtLeast(usize),
    /// At least this fraction of the *originally selected* cohort
    /// (rounded up, floored at 1). `Fraction(1.0)` keeps the cohort at
    /// full strength by promoting a standby for every failure.
    Fraction(f64),
}

impl Default for Quorum {
    fn default() -> Self {
        Quorum::AtLeast(1)
    }
}

impl Quorum {
    /// The concrete survivor count required for a cohort of `selected`
    /// initially chosen participants. Always at least 1.
    pub fn required(&self, selected: usize) -> usize {
        match *self {
            Quorum::AtLeast(n) => n.max(1),
            Quorum::Fraction(f) => {
                let f = f.clamp(0.0, 1.0);
                ((f * selected as f64).ceil() as usize).max(1)
            }
        }
    }
}

/// The federation's complete reaction policy to injected faults.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultTolerance {
    /// Transfer retry/backoff policy.
    pub retry: RetryPolicy,
    /// Simulated-seconds straggler deadline per round: once a
    /// participant's simulated train+transfer time exceeds it, the
    /// leader stops waiting and aggregates whoever reported. `None`
    /// waits forever (the pre-fault behaviour).
    pub straggler_deadline_seconds: Option<f64>,
    /// Minimum surviving cohort before ranked standbys are promoted —
    /// and, when the standby list runs dry, before the round fails with
    /// a quorum-lost error.
    pub quorum: Quorum,
}

impl FaultTolerance {
    /// Full-strength tolerance: keep the cohort at its selected size via
    /// ranked replacements (quorum = 100% of the selection).
    pub fn full_strength() -> Self {
        Self {
            quorum: Quorum::Fraction(1.0),
            ..Self::default()
        }
    }

    /// Sets the straggler deadline.
    pub fn with_deadline(mut self, seconds: f64) -> Self {
        self.straggler_deadline_seconds = Some(seconds);
        self
    }

    /// Sets the quorum rule.
    pub fn with_quorum(mut self, quorum: Quorum) -> Self {
        self.quorum = quorum;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_spec_is_inert() {
        assert!(FaultSpec::none().is_inert());
        assert!(!FaultSpec::dropout(1, 0.2).is_inert());
        assert!(!FaultSpec::none().with_crash(0, 1).is_inert());
        assert!(!FaultSpec::none().with_link_loss(0.5).is_inert());
        assert!(!FaultSpec::none()
            .with_stragglers(0.1, (2.0, 3.0))
            .is_inert());
    }

    #[test]
    fn validate_catches_bad_ranges() {
        assert!(FaultSpec::none().validate().is_ok());
        assert!(FaultSpec::unreliable_edge(1).validate().is_ok());
        assert!(FaultSpec::dropout(0, 1.5).validate().is_err());
        assert!(FaultSpec::dropout(0, -0.1).validate().is_err());
        assert!(FaultSpec::none()
            .with_link_loss(f64::NAN)
            .validate()
            .is_err());
        let bad_slow = FaultSpec::none().with_stragglers(0.1, (0.5, 2.0));
        assert!(bad_slow.validate().is_err());
        let inverted = FaultSpec::none().with_stragglers(0.1, (4.0, 2.0));
        assert!(inverted.validate().is_err());
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_before(0), 0.0);
        assert!((r.backoff_before(1) - 0.5).abs() < 1e-12);
        assert!((r.backoff_before(2) - 1.0).abs() < 1e-12);
        assert!((r.backoff_before(3) - 2.0).abs() < 1e-12);
        // Capped at max_backoff_seconds.
        assert!((r.backoff_before(20) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn quorum_required_floors_at_one() {
        assert_eq!(Quorum::AtLeast(0).required(5), 1);
        assert_eq!(Quorum::AtLeast(3).required(5), 3);
        assert_eq!(Quorum::Fraction(0.0).required(5), 1);
        assert_eq!(Quorum::Fraction(0.5).required(5), 3); // ceil(2.5)
        assert_eq!(Quorum::Fraction(1.0).required(4), 4);
        assert_eq!(Quorum::Fraction(2.0).required(4), 4); // clamped
        assert_eq!(Quorum::default().required(10), 1);
    }

    #[test]
    fn tolerance_builders_compose() {
        let t = FaultTolerance::full_strength()
            .with_deadline(12.5)
            .with_retry(RetryPolicy {
                max_attempts: 5,
                ..RetryPolicy::default()
            });
        assert_eq!(t.quorum, Quorum::Fraction(1.0));
        assert_eq!(t.straggler_deadline_seconds, Some(12.5));
        assert_eq!(t.retry.max_attempts, 5);
        assert_eq!(FaultTolerance::default().straggler_deadline_seconds, None);
    }
}
