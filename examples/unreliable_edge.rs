//! An unreliable edge deployment: dropouts, stragglers, lossy links.
//!
//! Real edge networks fail constantly — nodes lose power, uplinks drop
//! packets, slow devices straggle. This example runs the same query
//! twice, once over a clean network and once under a deterministic
//! fault plan, and prints what the fault-tolerant round engine did
//! about it: retried transfers, cut off stragglers at the deadline and
//! promoted ranked standby nodes to keep the cohort at full strength.
//!
//! Every injected event is a pure function of `(seed, query, node,
//! round, attempt)`, so re-running this binary reproduces the exact
//! same trace — byte for byte — at any thread count.
//!
//! ```text
//! cargo run --release -p qens --example unreliable_edge
//! ```

use qens::prelude::*;

fn main() {
    let build = |spec: Option<FaultSpec>| {
        let mut b = FederationBuilder::new()
            .heterogeneous_nodes(10, 200)
            .clusters_per_node(5)
            .seed(42)
            .epochs(10)
            .capacities(0.5, 2.0)
            .links((1e6, 20e6), (0.005, 0.05))
            .fault_tolerance(
                FaultTolerance::full_strength()
                    .with_deadline(30.0)
                    .with_retry(RetryPolicy {
                        max_attempts: 4,
                        ..RetryPolicy::default()
                    }),
            );
        if let Some(spec) = spec {
            b = b.faults(spec);
        }
        b.build()
    };

    let clean = build(None);
    let query = clean.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
    let policy = PolicyKind::query_driven(4);

    let baseline = clean.run_query(&query, &policy).unwrap();
    println!("— clean network —");
    println!(
        "selected {} nodes, loss {:.4}, sim time {:.3}s, {} B on the wire",
        baseline.accounting.nodes_selected,
        baseline.query_loss(clean.network(), &query).unwrap(),
        baseline.accounting.sim_seconds,
        baseline.accounting.bytes_transferred,
    );

    // A moderately hostile deployment: 15% dropouts, 20% stragglers at
    // 2-6x slowdown, 10% per-attempt link loss — plus one scheduled
    // permanent crash of the top-ranked node in round 0.
    let top = baseline.selection.participants[0].node.0;
    let spec = FaultSpec::unreliable_edge(7).with_crash(top, 0);
    let faulty = build(Some(spec));
    let outcome = faulty.run_query(&query, &policy).unwrap();

    println!("\n— unreliable network (same query, deterministic faults) —");
    println!(
        "loss {:.4}, sim time {:.3}s, {} B on the wire",
        outcome.query_loss(faulty.network(), &query).unwrap(),
        outcome.accounting.sim_seconds,
        outcome.accounting.bytes_transferred,
    );
    println!(
        "retries {}, dropped {}, replacements {}, deadline misses {}",
        outcome.accounting.retries,
        outcome.accounting.dropped_participants,
        outcome.accounting.replacements,
        outcome.accounting.deadline_misses,
    );

    println!("\nfault trace ({} events):", outcome.fault_trace.len());
    for event in &outcome.fault_trace.events {
        println!("  {event:?}");
    }

    let promoted: Vec<String> = outcome
        .final_cohort
        .iter()
        .filter(|p| {
            baseline
                .selection
                .participants
                .iter()
                .all(|b| b.node != p.node)
        })
        .map(|p| faulty.network().node(p.node).name().to_string())
        .collect();
    if promoted.is_empty() {
        println!("\nno standby promotions were needed this run");
    } else {
        println!("\nranked standbys promoted into the cohort: {promoted:?}");
    }

    // Determinism: the exact same configuration replays the exact same
    // chaos. This is what makes fault experiments reproducible.
    let replay = build(Some(FaultSpec::unreliable_edge(7).with_crash(top, 0)))
        .run_query(&query, &policy)
        .unwrap();
    assert_eq!(replay.fault_trace.to_json(), outcome.fault_trace.to_json());
    println!("\nreplay produced a byte-identical fault trace ✓");
}
