//! Streaming edge nodes: data keeps arriving, summaries keep moving.
//!
//! Edge deployments are not static — a sensor node collects new hourly
//! records forever. This example shows the maintenance loop around the
//! paper's mechanism: nodes absorb fresh data, re-quantise (full k-means
//! here; `cluster::minibatch` offers the incremental variant), and the
//! *same* standing query selects a different participant set once a
//! node's data drifts into the requested region.
//!
//! ```text
//! cargo run --release -p qens --example streaming_edge
//! ```

use qens::airdata::scenario::NodeSpec;
use qens::cluster::MiniBatchKMeans;
use qens::linalg::Matrix;
use qens::prelude::*;

fn main() {
    // Three nodes; node 2 starts far away from the query region and
    // drifts toward it epoch by epoch.
    let stationary_a = NodeSpec {
        x_range: (0.0, 20.0),
        slope: 2.0,
        intercept: 3.0,
        noise_std: 2.0,
    };
    let stationary_b = NodeSpec {
        x_range: (40.0, 70.0),
        slope: -1.0,
        intercept: 90.0,
        noise_std: 2.0,
    };
    let drifting_start = NodeSpec {
        x_range: (80.0, 100.0),
        slope: 2.0,
        intercept: 3.0,
        noise_std: 2.0,
    };

    let fed = FederationBuilder::new()
        .datasets(vec![
            ("stationary-a".into(), stationary_a.sample(300, 1)),
            ("stationary-b".into(), stationary_b.sample(300, 2)),
            ("drifting".into(), drifting_start.sample(300, 3)),
        ])
        .clusters_per_node(5)
        .seed(11)
        .epochs(10)
        .build();

    // A standing analytics query over the region x in [0, 25].
    let query = fed.query_from_bounds(0, &[0.0, 25.0, -10.0, 60.0]);
    println!("standing query: {:?}", query.to_boundary_vec());

    // Mutable copy of the network we evolve over rounds.
    let mut network = fed.network().clone();
    let policy = QueryDriven {
        epsilon: 0.05,
        ..QueryDriven::top_l(3)
    };

    for round in 0..5u64 {
        // Fresh data arrives: the drifting node's range walks toward the
        // query region by 20 units per round.
        let shift = 80.0 - 20.0 * round as f64;
        let fresh = NodeSpec {
            x_range: (shift.max(0.0), shift.max(0.0) + 20.0),
            slope: 2.0,
            intercept: 3.0,
            noise_std: 2.0,
        }
        .sample(150, 100 + round);
        let mut nodes: Vec<EdgeNode> = network.nodes().to_vec();
        nodes[2].absorb(&fresh);
        network = EdgeNetwork::from_datasets(
            nodes
                .iter()
                .map(|n| (n.name().to_string(), n.data().clone()))
                .collect(),
        );
        network.quantize_all(5, 11 + round);

        let ctx = SelectionContext::new(&network, &query);
        let sel = policy.select(&ctx);
        print!(
            "round {round}: drifting node covers x>= {:>5.0}; selected:",
            shift.max(0.0)
        );
        for p in &sel.participants {
            print!(
                " {}(r={:.2}, est {:.0} samples in region)",
                network.node(p.node).name(),
                p.ranking,
                network.node(p.node).estimated_query_cardinality(&query)
            );
        }
        println!();
    }

    // The incremental alternative: maintain centroids without refitting.
    println!("\nmini-batch maintenance of one node's quantisation:");
    let mut stream_node = stationary_a.sample(200, 21);
    let joint = |ds: &DenseDataset| {
        let mut rows = Vec::with_capacity(ds.len());
        for (r, &y) in ds.x().row_iter().zip(ds.y()) {
            rows.push(vec![r[0], y]);
        }
        Matrix::from_rows(&rows)
    };
    let mut mb = MiniBatchKMeans::new(&joint(&stream_node), 5, 7);
    for step in 0..4u64 {
        let batch = stationary_a.sample(60, 30 + step);
        mb.update(&joint(&batch));
        stream_node = stream_node.concat(&batch);
        println!(
            "  after batch {step}: {} points folded, quantisation loss {:.1}",
            mb.total_count(),
            mb.loss(&joint(&stream_node))
        );
    }
}
