//! The §II pre-test: do the participants even *need* a selection
//! mechanism?
//!
//! Replicates the paper's Figs. 1-2 / Tables I-II reasoning: on a
//! homogeneous population any node looks like any other (random selection
//! is fine); on a heterogeneous population the same feature pair can
//! correlate positively on one node and negatively on another, and the
//! leader's probe model exposes that immediately.
//!
//! ```text
//! cargo run --release -p qens --example heterogeneity_probe
//! ```

use qens::linalg::stats;
use qens::prelude::*;

fn probe(fed: &Federation, label: &str) {
    println!("\n== {label} population ==");
    println!(
        "{:<14} {:>10} {:>12} {:>14}",
        "node", "slope", "x-range", "probe loss"
    );

    // Per-node OLS line (what the paper's scatter plots visualise).
    let slopes: Vec<f64> = fed
        .network()
        .nodes()
        .iter()
        .map(|n| {
            let xs = n.data().x().col(0);
            stats::ols_line(&xs, n.data().y()).0
        })
        .collect();

    // The leader's probe: train on node 0, evaluate everywhere
    // (the game-theory pre-test reused as a diagnosis tool).
    let gt = GameTheory::paper_default(0, fed.network().len(), 99);
    let any_query = {
        let b = fed.network().global_space().to_boundary_vec();
        Query::from_boundary_vec(0, &b)
    };
    let ctx = SelectionContext::new(fed.network(), &any_query);
    let losses = gt.probe_losses(&ctx);

    for ((node, slope), loss) in fed.network().nodes().iter().zip(&slopes).zip(&losses) {
        let xs = node.data().x().col(0);
        let (lo, hi) = stats::min_max(&xs).unwrap();
        println!(
            "{:<14} {:>10.2} {:>5.0}..{:<6.0} {:>14.6}",
            format!("{} {}", node.id(), node.name()),
            slope,
            lo,
            hi,
            loss
        );
    }

    // The verdict: how much do probe losses vary across nodes?
    let spread = stats::max(&losses).unwrap() / stats::min(&losses).unwrap().max(1e-12);
    let sign_flips = slopes.iter().any(|&s| s < 0.0) && slopes.iter().any(|&s| s > 0.0);
    println!("probe-loss spread (max/min): {spread:.1}x; opposite-sign regressions: {sign_flips}");
    if spread > 10.0 || sign_flips {
        println!("verdict: HETEROGENEOUS - use the query-driven selection mechanism.");
    } else {
        println!("verdict: homogeneous - random selection will do (Table I).");
    }
}

fn main() {
    let homogeneous = FederationBuilder::new()
        .homogeneous_nodes(10, 300)
        .seed(1)
        .epochs(10)
        .build();
    probe(&homogeneous, "homogeneous");

    let heterogeneous = FederationBuilder::new()
        .heterogeneous_nodes(10, 300)
        .seed(1)
        .epochs(10)
        .build();
    probe(&heterogeneous, "heterogeneous");
}
