//! Healthcare cohort scenario — the paper's introduction motivates the
//! mechanism with hospitals that cannot share patient records.
//!
//! Six hospitals hold (age, biomarker) data for very different patient
//! populations: paediatric, adult, geriatric, an oncology centre with a
//! different biomarker/age relation, and two general hospitals. A study
//! issues the query "patients aged 20–50" and the federation must engage
//! only the hospitals that actually treat that cohort — without ever
//! seeing a record.
//!
//! ```text
//! cargo run --release -p qens --example hospital_cohort
//! ```

use qens::linalg::{rng as lrng, Matrix};
use qens::prelude::*;

/// A hospital's local dataset: biomarker = f(age) + noise over an
/// age range characteristic of its population.
fn hospital(
    name: &str,
    age_range: (f64, f64),
    slope: f64,
    base: f64,
    n: usize,
    seed: u64,
) -> (String, DenseDataset) {
    use linalg::rng::Rng;
    let mut rng = lrng::rng_for(seed, 0x40_5F);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let age = rng.gen_range(age_range.0..age_range.1);
        rows.push(vec![age]);
        y.push(base + slope * age + lrng::normal(&mut rng, 0.0, 2.0));
    }
    (
        name.to_string(),
        DenseDataset::new(Matrix::from_rows(&rows), y),
    )
}

fn main() {
    let hospitals = vec![
        hospital("children's-hospital", (0.0, 16.0), 1.2, 20.0, 400, 1),
        hospital("general-north", (18.0, 70.0), 0.8, 30.0, 600, 2),
        hospital("general-south", (18.0, 75.0), 0.8, 28.0, 500, 3),
        hospital("geriatric-centre", (65.0, 95.0), 2.5, -40.0, 450, 4),
        hospital("oncology-centre", (30.0, 80.0), -1.5, 160.0, 350, 5),
        hospital("sports-clinic", (15.0, 40.0), 0.3, 35.0, 300, 6),
    ];

    let fed = FederationBuilder::new()
        .datasets(hospitals)
        .clusters_per_node(5)
        .seed(7)
        .epochs(25)
        .build();

    println!("== federated hospital study ==");
    for node in fed.network().nodes() {
        let space = node.data_space();
        println!(
            "  {} ({:>18}): ages [{:>4.0}, {:>4.0}], biomarker [{:>6.1}, {:>6.1}], {} patients",
            node.id(),
            node.name(),
            space.interval(0).lo(),
            space.interval(0).hi(),
            space.interval(1).lo(),
            space.interval(1).hi(),
            node.len()
        );
    }

    // The study cohort: ages 20-50, any biomarker value the cohort shows.
    let global = fed.network().global_space();
    let biomarker = global.interval(1);
    let query = fed.query_from_bounds(0, &[20.0, 50.0, biomarker.lo(), biomarker.hi()]);
    println!(
        "\nstudy query: ages 20-50 (joint region {:?})",
        query.to_boundary_vec()
    );

    let outcome = fed
        .run_query(
            &query,
            &PolicyKind::QueryDriven {
                epsilon: 0.05,
                l: 4,
            },
        )
        .expect("several hospitals treat this cohort");

    println!("\nselected hospitals (ranked):");
    for p in &outcome.selection.participants {
        println!(
            "  {:>18}: ranking {:.3}, trains on {} of {} patients",
            fed.network().node(p.node).name(),
            p.ranking,
            p.training_samples(fed.network()),
            fed.network().node(p.node).len()
        );
    }
    let excluded: Vec<&str> = fed
        .network()
        .nodes()
        .iter()
        .filter(|n| {
            outcome
                .selection
                .participants
                .iter()
                .all(|p| p.node != n.id())
        })
        .map(|n| n.name())
        .collect();
    println!("  excluded: {excluded:?}");

    let loss = outcome
        .query_loss(fed.network(), &query)
        .expect("cohort data exists");
    let all = fed
        .run_query(&query, &PolicyKind::AllNodes)
        .expect("all-nodes always runs");
    let all_loss = all
        .query_loss(fed.network(), &query)
        .expect("cohort data exists");
    println!("\ncohort-model loss (scaled MSE):");
    println!(
        "  query-driven hospitals : {loss:.6}  ({} patients)",
        outcome.accounting.samples_used
    );
    println!(
        "  every hospital         : {all_loss:.6}  ({} patients)",
        all.accounting.samples_used
    );
    println!(
        "\nthe children's and geriatric populations would only have dragged the \
         cohort model away from the 20-50 regime - the selection left them out."
    );
}
