//! Smart-city scenario: the paper's own evaluation setting.
//!
//! Ten air-quality monitoring stations act as edge nodes (synthetic
//! Beijing Multi-Site data: urban stations polluted, rural stations
//! clean). A city analytics service issues range queries — "model PM2.5
//! from PM10 during heavy-pollution episodes", "model the clean-air
//! regime" — and the leader must engage the right stations for each.
//!
//! ```text
//! cargo run --release -p qens --example smart_city
//! ```

use qens::prelude::*;

fn main() {
    let fed = FederationBuilder::new()
        .air_quality_nodes(10, 24 * 90) // 90 days of hourly data per station
        .clusters_per_node(5)
        .seed(2023)
        .epochs(20)
        .build();

    println!("== smart-city air-quality federation ==");
    println!("stations:");
    for node in fed.network().nodes() {
        let space = node.data_space();
        println!(
            "  {} ({:>14}): {:>5} samples, PM10 range [{:>6.1}, {:>7.1}], PM2.5 range [{:>6.1}, {:>7.1}]",
            node.id(),
            node.name(),
            node.len(),
            space.interval(0).lo(),
            space.interval(0).hi(),
            space.interval(1).lo(),
            space.interval(1).hi(),
        );
    }

    let global = fed.network().global_space();
    let pm10_hi = global.interval(0).hi();
    let pm25_hi = global.interval(1).hi();

    // Three domain queries: clean regime, typical conditions, episodes.
    let queries = [
        (
            "clean-air regime",
            fed.query_from_bounds(0, &[0.0, 60.0, 0.0, 45.0]),
        ),
        (
            "typical urban day",
            fed.query_from_bounds(1, &[60.0, 220.0, 40.0, 170.0]),
        ),
        (
            "heavy-pollution episodes",
            fed.query_from_bounds(2, &[250.0, pm10_hi, 200.0, pm25_hi]),
        ),
    ];

    for (label, query) in &queries {
        println!(
            "\n--- query {}: {label} ({:?}) ---",
            query.id(),
            query.to_boundary_vec()
        );
        match fed.run_query(query, &PolicyKind::query_driven(4)) {
            Ok(outcome) => {
                print!("  selected:");
                for p in &outcome.selection.participants {
                    print!(
                        " {}(r={:.2},{}cl)",
                        fed.network().node(p.node).name(),
                        p.ranking,
                        p.supporting_clusters.len()
                    );
                }
                println!();
                println!(
                    "  data used: {} / {} samples ({:.1}%)",
                    outcome.accounting.samples_used,
                    outcome.accounting.samples_total,
                    100.0 * outcome.accounting.data_fraction()
                );
                match outcome.query_loss(fed.network(), query) {
                    Some(loss) => println!(
                        "  loss on requested region: {:.6} (scaled), {:.2} (µg/m³)²",
                        loss,
                        outcome.scaler.unscale_mse(loss)
                    ),
                    None => println!("  no held-out data inside the region"),
                }
            }
            Err(e) => println!("  {e}"),
        }
    }

    // A short dynamic workload comparing all four mechanisms (mini Fig. 7).
    println!("\n--- 30-query dynamic workload, mechanism comparison ---");
    let wl = fed.workload(&WorkloadConfig {
        n_queries: 30,
        ..WorkloadConfig::paper_default(11)
    });
    let rows = compare_policies(
        &fed,
        &wl,
        &[
            PolicyKind::query_driven(4),
            PolicyKind::Random { l: 4, seed: 3 },
            PolicyKind::GameTheory {
                leader: 0,
                l: 4,
                seed: 3,
            },
            PolicyKind::AllNodes,
        ],
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>8}",
        "policy", "mean loss", "data frac", "sim secs", "failed"
    );
    for r in &rows {
        println!(
            "{:<14} {:>12.6} {:>12.3} {:>12.4} {:>8}",
            r.policy,
            r.mean_loss.unwrap_or(f64::NAN),
            r.mean_data_fraction,
            r.mean_sim_seconds,
            r.failed_queries
        );
    }
}
