//! Quickstart: build a federation, issue one analytics query, and watch
//! query-driven selection beat random selection.
//!
//! ```text
//! cargo run --release -p qens --example quickstart
//! ```

use qens::prelude::*;

fn main() {
    // Ten edge nodes with wildly different data ranges and patterns
    // (node 0 and 1 share a pattern; the rest walk away from it).
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(10, 400)
        .clusters_per_node(5)
        .seed(42)
        .epochs(25)
        .build();

    println!("== qens quickstart ==");
    println!(
        "network: {} nodes, {} samples total, joint space {:?}",
        fed.network().len(),
        fed.network().total_samples(),
        fed.network().global_space().to_boundary_vec()
    );

    // An analytics query over the "leader-like" region of the data space:
    // feature x in [0, 20], label y in [0, 45].
    let query = fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
    println!(
        "\nquery {}: region {:?}",
        query.id(),
        query.to_boundary_vec()
    );

    // --- query-driven selection (the paper) ---
    let outcome = fed
        .run_query(&query, &PolicyKind::query_driven(3))
        .expect("the query overlaps at least one node");
    println!(
        "\nquery-driven selection picked {} nodes:",
        outcome.selection.len()
    );
    for p in &outcome.selection.participants {
        let node = fed.network().node(p.node);
        println!(
            "  {} ({}): ranking {:.3}, {} supporting clusters, {} training samples",
            p.node,
            node.name(),
            p.ranking,
            p.supporting_clusters.len(),
            p.training_samples(fed.network()),
        );
    }
    let ours = outcome
        .query_loss(fed.network(), &query)
        .expect("test data exists");

    // --- random selection baseline ---
    let random = fed
        .run_query(&query, &PolicyKind::Random { l: 3, seed: 7 })
        .expect("random selection always picks nodes");
    let random_loss = random
        .query_loss(fed.network(), &query)
        .expect("test data exists");

    println!("\nper-query loss on the requested data region (scaled MSE):");
    println!("  query-driven : {ours:.6}");
    println!("  random       : {random_loss:.6}");
    println!(
        "\ndata used: query-driven {} / {} samples; random {} / {}",
        outcome.accounting.samples_used,
        outcome.accounting.samples_total,
        random.accounting.samples_used,
        random.accounting.samples_total,
    );
    if ours < random_loss {
        println!("\nquery-driven selection won, as the paper predicts.");
    } else {
        println!(
            "\nrandom got lucky on this draw - try another seed; the averages tell the story."
        );
    }
}
