#!/usr/bin/env bash
# Tier-1 verification gate for the qens workspace.
#
# Runs entirely offline (no crates-io access is required — the default
# feature set of every crate is dependency-free):
#
#   1. release build of the whole workspace,
#   2. the full test suite,
#   3. rustfmt check,
#   4. the repro smoke path, which runs the selection→train→aggregate
#      pipeline end to end and asserts a non-empty telemetry snapshot
#      spanning cluster/selection/mlkit/fedlearn/edgesim.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> repro --smoke (pipeline + telemetry health)"
cargo run -q -p bench --bin repro --release --offline -- --smoke

echo "verify OK"
