#!/usr/bin/env bash
# Tier-1 verification gate for the qens workspace.
#
# Runs entirely offline (no crates-io access is required — the default
# feature set of every crate is dependency-free):
#
#   1. release build of the whole workspace,
#   2. the full test suite,
#   3. the full test suite again under QENS_THREADS=2, exercising the
#      env-configured global `par` pool (the determinism suite injects
#      pools explicitly; this pass covers the environment path),
#   4. clippy with warnings denied,
#   5. rustfmt check,
#   6. the repro smoke path, which runs the selection→train→aggregate
#      pipeline end to end and asserts a non-empty telemetry snapshot
#      spanning cluster/selection/mlkit/fedlearn/edgesim — and, under a
#      nonzero-dropout fault plan, writes results/fault_trace.json,
#   7. fault + trace seed-stability: the smoke run is repeated under
#      QENS_THREADS=1 and QENS_THREADS=2 and both the fault trace and
#      the logical-clock Chrome trace must be byte-identical (the
#      faults and telemetry::trace determinism contracts),
#   8. the live-observability self-test (`repro serve --once`): binds an
#      ephemeral port, probes /healthz, /metrics, /trace, /profile,
#      /profile.svg, /slowest, /slo, /cache, /nodes, /nodes/<id> and
#      /events over a plain TcpStream, asserts non-empty qens_* metric
#      families (including qens_build_info, qens_uptime_seconds and the
#      qens_node_*/qens_fleet_* scorecard series), round-trips
#      POST /query over a keep-alive socket, and exercises the
#      404/400/405/413 error paths plus the graceful-drain shutdown
#      contract,
#   9. profiler seed-stability: `repro profile` is run under
#      QENS_THREADS=1 and QENS_THREADS=4 and the logical-clock folded
#      stacks and SVG flamegraph must be byte-identical,
#  10. the perf harness (`repro bench --check`) under QENS_BENCH_GATE:
#      records kernel timings to results/BENCH_qens.json, warns on any
#      regression against the committed baseline, and *fails* when a
#      kernel regresses past the gate factor below,
#  11. selection-cache transparency: `repro fig7` is run with
#      QENS_CACHE=0 and again with QENS_CACHE=1 (coarse
#      QENS_CACHE_QUANT so the stream actually hits) and the figure
#      CSVs must be byte-identical — the cache may change how fast a
#      selection is computed, never what is selected — plus the cache
#      integration tests re-run under QENS_THREADS=2,
#  12. the serving smoke (`repro load --smoke`): spawns a real server on
#      an ephemeral port, drives it with concurrent keep-alive clients
#      while scraping /metrics, /cache, /nodes and /events, and asserts
#      the telemetry ledger matches the queries served,
#  13. load-generator seed-stability: the full `repro load` sweep is run
#      under QENS_THREADS=1 and QENS_THREADS=4 and the fig9 saturation
#      CSV must be byte-identical (service times come from simulated
#      seconds and the queueing model runs on a logical clock, so thread
#      count must not leak into the report),
#  14. fleet-observability seed-stability: `repro fleet` is run under
#      QENS_THREADS=1 and QENS_THREADS=4 and both results/fleet.json
#      (scorecards + skew + logical journal tail) and
#      results/fig10_fleet_skew.csv must be byte-identical — every
#      scorecard field in the export is integer or leader-serial
#      simulated time, so the fleet registry honours the same
#      determinism contract as the fault and trace subsystems,
#  15. spatial-index transparency: `repro fig7` and the fault/trace
#      smoke are run with QENS_INDEX=0 and again with QENS_INDEX=1 and
#      the figure CSVs plus results/fault_trace.json must be
#      byte-identical — the index may change how a selection is
#      computed, never what is selected — plus the indexed-selection
#      integration tests re-run under QENS_THREADS=2,
#  16. scaling-sweep seed-stability: `repro scale` (Fig. 11: 1k → 1M
#      nodes, scan vs indexed, bit-identity asserted inside the sweep)
#      is run under QENS_THREADS=1 and QENS_THREADS=4 and
#      results/fig11_scale.csv must be byte-identical (the CSV is
#      structural counters + selection hashes, never wall clock).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> QENS_THREADS=2 cargo test -q --offline (global pool path)"
QENS_THREADS=2 cargo test -q --offline

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> repro --smoke (pipeline + telemetry + fault-engine health)"
cargo run -q -p bench --bin repro --release --offline -- --smoke

echo "==> fault + trace seed-stability (byte-identical at QENS_THREADS=1 vs 2)"
QENS_THREADS=1 cargo run -q -p bench --bin repro --release --offline -- --smoke
cp results/fault_trace.json results/fault_trace.t1.json
cp results/trace.json results/trace.t1.json
QENS_THREADS=2 cargo run -q -p bench --bin repro --release --offline -- --smoke
cmp results/fault_trace.json results/fault_trace.t1.json \
  || { echo "FAIL: fault trace differs between QENS_THREADS=1 and 2"; exit 1; }
cmp results/trace.json results/trace.t1.json \
  || { echo "FAIL: logical Chrome trace differs between QENS_THREADS=1 and 2"; exit 1; }
rm -f results/fault_trace.t1.json results/trace.t1.json
echo "fault + Chrome traces are thread-count stable"

echo "==> repro serve --once (live endpoint + error-path self-test)"
cargo run -q -p bench --bin repro --release --offline -- serve --once

echo "==> profiler seed-stability (byte-identical at QENS_THREADS=1 vs 4)"
QENS_THREADS=1 cargo run -q -p bench --bin repro --release --offline -- profile
cp results/profile.folded results/profile.folded.t1
cp results/profile.svg results/profile.svg.t1
QENS_THREADS=4 cargo run -q -p bench --bin repro --release --offline -- profile
cmp results/profile.folded results/profile.folded.t1 \
  || { echo "FAIL: folded stacks differ between QENS_THREADS=1 and 4"; exit 1; }
cmp results/profile.svg results/profile.svg.t1 \
  || { echo "FAIL: SVG flamegraph differs between QENS_THREADS=1 and 4"; exit 1; }
rm -f results/profile.folded.t1 results/profile.svg.t1
echo "folded stacks + flamegraph are thread-count stable"

echo "==> repro bench --check (perf harness, QENS_BENCH_GATE=20 hard gate)"
QENS_BENCH_GATE=20 cargo run -q -p bench --bin repro --release --offline -- bench --check

echo "==> selection-cache transparency (fig7 byte-identical with QENS_CACHE=0 vs 1)"
QENS_CACHE=0 cargo run -q -p bench --bin repro --release --offline -- fig7 > /dev/null
cp results/fig7_lr.csv results/fig7_lr.nocache.csv
cp results/fig7_nn.csv results/fig7_nn.nocache.csv
QENS_CACHE=1 QENS_CACHE_QUANT=50 \
  cargo run -q -p bench --bin repro --release --offline -- fig7 > /dev/null
cmp results/fig7_lr.csv results/fig7_lr.nocache.csv \
  || { echo "FAIL: fig7 LR series differs with the selection cache on"; exit 1; }
cmp results/fig7_nn.csv results/fig7_nn.nocache.csv \
  || { echo "FAIL: fig7 NN series differs with the selection cache on"; exit 1; }
rm -f results/fig7_lr.nocache.csv results/fig7_nn.nocache.csv
echo "fig7 series are cache-transparent"

echo "==> selection-cache tests under QENS_THREADS=2"
QENS_THREADS=2 cargo test -q --offline -p qens --test selection_cache

echo "==> repro load --smoke (live serving: keep-alive clients + concurrent scrapes)"
cargo run -q -p bench --bin repro --release --offline -- load --smoke

echo "==> load-generator seed-stability (fig9 byte-identical at QENS_THREADS=1 vs 4)"
QENS_THREADS=1 cargo run -q -p bench --bin repro --release --offline -- load > /dev/null
cp results/fig9_saturation.csv results/fig9_saturation.t1.csv
QENS_THREADS=4 cargo run -q -p bench --bin repro --release --offline -- load > /dev/null
cmp results/fig9_saturation.csv results/fig9_saturation.t1.csv \
  || { echo "FAIL: fig9 saturation sweep differs between QENS_THREADS=1 and 4"; exit 1; }
rm -f results/fig9_saturation.t1.csv
echo "fig9 saturation sweep is thread-count stable"

echo "==> fleet-observability seed-stability (fleet.json + fig10 byte-identical at QENS_THREADS=1 vs 4)"
QENS_THREADS=1 cargo run -q -p bench --bin repro --release --offline -- fleet > /dev/null
cp results/fleet.json results/fleet.t1.json
cp results/fig10_fleet_skew.csv results/fig10_fleet_skew.t1.csv
QENS_THREADS=4 cargo run -q -p bench --bin repro --release --offline -- fleet > /dev/null
cmp results/fleet.json results/fleet.t1.json \
  || { echo "FAIL: fleet scorecards differ between QENS_THREADS=1 and 4"; exit 1; }
cmp results/fig10_fleet_skew.csv results/fig10_fleet_skew.t1.csv \
  || { echo "FAIL: fig10 skew heatmap differs between QENS_THREADS=1 and 4"; exit 1; }
rm -f results/fleet.t1.json results/fig10_fleet_skew.t1.csv
echo "fleet scorecards + journal are thread-count stable"

echo "==> spatial-index transparency (fig7 + fault trace byte-identical with QENS_INDEX=0 vs 1)"
QENS_INDEX=0 cargo run -q -p bench --bin repro --release --offline -- fig7 > /dev/null
cp results/fig7_lr.csv results/fig7_lr.noindex.csv
cp results/fig7_nn.csv results/fig7_nn.noindex.csv
QENS_INDEX=1 cargo run -q -p bench --bin repro --release --offline -- fig7 > /dev/null
cmp results/fig7_lr.csv results/fig7_lr.noindex.csv \
  || { echo "FAIL: fig7 LR series differs with the spatial index on"; exit 1; }
cmp results/fig7_nn.csv results/fig7_nn.noindex.csv \
  || { echo "FAIL: fig7 NN series differs with the spatial index on"; exit 1; }
rm -f results/fig7_lr.noindex.csv results/fig7_nn.noindex.csv
QENS_INDEX=0 cargo run -q -p bench --bin repro --release --offline -- --smoke > /dev/null
cp results/fault_trace.json results/fault_trace.noindex.json
QENS_INDEX=1 cargo run -q -p bench --bin repro --release --offline -- --smoke > /dev/null
cmp results/fault_trace.json results/fault_trace.noindex.json \
  || { echo "FAIL: fault trace differs with the spatial index on"; exit 1; }
rm -f results/fault_trace.noindex.json
echo "fig7 series + fault trace are index-transparent"

echo "==> indexed-selection tests under QENS_THREADS=2"
QENS_THREADS=2 cargo test -q --offline -p qens --test indexed_selection

echo "==> scaling-sweep seed-stability (fig11 byte-identical at QENS_THREADS=1 vs 4)"
QENS_THREADS=1 cargo run -q -p bench --bin repro --release --offline -- scale > /dev/null
cp results/fig11_scale.csv results/fig11_scale.t1.csv
QENS_THREADS=4 cargo run -q -p bench --bin repro --release --offline -- scale > /dev/null
cmp results/fig11_scale.csv results/fig11_scale.t1.csv \
  || { echo "FAIL: fig11 scaling sweep differs between QENS_THREADS=1 and 4"; exit 1; }
rm -f results/fig11_scale.t1.csv
echo "fig11 scaling sweep is thread-count stable"

echo "verify OK"
