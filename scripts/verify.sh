#!/usr/bin/env bash
# Tier-1 verification gate for the qens workspace.
#
# Runs entirely offline (no crates-io access is required — the default
# feature set of every crate is dependency-free):
#
#   1. release build of the whole workspace,
#   2. the full test suite,
#   3. the full test suite again under QENS_THREADS=2, exercising the
#      env-configured global `par` pool (the determinism suite injects
#      pools explicitly; this pass covers the environment path),
#   4. clippy with warnings denied,
#   5. rustfmt check,
#   6. the repro smoke path, which runs the selection→train→aggregate
#      pipeline end to end and asserts a non-empty telemetry snapshot
#      spanning cluster/selection/mlkit/fedlearn/edgesim.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> QENS_THREADS=2 cargo test -q --offline (global pool path)"
QENS_THREADS=2 cargo test -q --offline

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> repro --smoke (pipeline + telemetry health)"
cargo run -q -p bench --bin repro --release --offline -- --smoke

echo "verify OK"
