//! Integration tests for the hierarchical trace subsystem:
//!
//! * the logical-clock trace export must be **byte-identical** across
//!   worker counts (the same contract `faults::FaultTrace` gives the
//!   fault engine),
//! * the wall-clock trace must be structurally valid (balanced
//!   begin/end, parents open before children),
//! * events must be attributed to the query that produced them,
//! * disabled tracing must record nothing at all.
//!
//! The trace collector and mode are process-global, so every test
//! serialises on one lock and clears the buffer first.

use qens::prelude::*;
use qens::telemetry::trace;

/// Serialises tests that flip the process-global trace state.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs two queries on a fresh logical-clock trace and returns the
/// Chrome export.
fn traced_run(threads: usize) -> String {
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(4, 60)
        .clusters_per_node(3)
        .seed(7)
        .epochs(2)
        .threads(threads)
        .faults(FaultSpec::unreliable_edge(7).with_dropout(0.3))
        .fault_tolerance(FaultTolerance::full_strength())
        .build();
    trace::clear();
    for qid in 0..2u64 {
        let q = fed.query_from_bounds(qid, &[0.0, 20.0, 0.0, 45.0]);
        // Quorum loss under the hostile plan is acceptable: failed
        // attempts still trace deterministically, which is exactly what
        // the byte-identity contract must cover.
        let _ = fed.run_query(&q, &PolicyKind::query_driven(2));
    }
    trace::export_chrome(None)
}

#[test]
fn logical_trace_is_byte_identical_across_worker_counts() {
    let _g = lock();
    trace::set_mode(Some(trace::Clock::Logical));
    let serial = traced_run(1);
    let pooled = traced_run(2);
    trace::set_mode(None);
    trace::clear();
    assert!(
        serial.contains("\"ph\":\"B\""),
        "logical trace must contain spans"
    );
    assert_eq!(
        serial, pooled,
        "logical-clock trace must not depend on the worker count"
    );
}

#[test]
fn logical_trace_is_structurally_valid_and_query_attributed() {
    let _g = lock();
    trace::set_mode(Some(trace::Clock::Logical));
    let _ = traced_run(2);
    let events = trace::snapshot_events();
    let queries = trace::query_ids();
    trace::set_mode(None);
    trace::clear();
    trace::validate_structure(&events).expect("logical trace is well-formed");
    assert_eq!(queries, vec![0, 1], "both queries must appear in the trace");
    // The round spans must be owned by a query.
    assert!(
        events
            .iter()
            .any(|e| e.name == "fedlearn.round" && e.query != u64::MAX),
        "round spans must be attributed to their query"
    );
    // Logical mode records only leader-serial events: one thread.
    assert!(
        events.iter().all(|e| e.tid == 0),
        "logical-clock events must all be on tid 0"
    );
}

#[test]
fn wall_trace_is_structurally_valid_and_sees_worker_spans() {
    let _g = lock();
    trace::set_mode(Some(trace::Clock::Wall));
    let _ = traced_run(2);
    let events = trace::snapshot_events();
    trace::set_mode(None);
    trace::clear();
    trace::validate_structure(&events).expect("wall trace is well-formed");
    // Wall mode additionally records the scheduling-dependent spans.
    for name in ["fedlearn.train", "par.task", "selection.score_node"] {
        assert!(
            events.iter().any(|e| e.name == name),
            "wall trace must contain {name} spans"
        );
    }
    // Timestamps are monotone per thread.
    let mut last: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for e in &events {
        let prev = last.entry(e.tid).or_insert(0);
        assert!(e.ts >= *prev, "per-thread timestamps must be monotone");
        *prev = e.ts;
    }
}

#[test]
fn disabled_tracing_records_nothing() {
    let _g = lock();
    trace::set_mode(None);
    trace::clear();
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(3, 40)
        .clusters_per_node(2)
        .seed(5)
        .epochs(1)
        .build();
    let q = fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
    fed.run_query(&q, &PolicyKind::query_driven(2))
        .expect("query runs");
    assert_eq!(
        trace::events_len(),
        0,
        "disabled tracing must buffer no events"
    );
    let span = trace::span("never.recorded");
    assert!(!span.is_recording(), "disabled spans must be inert");
    drop(span);
    assert_eq!(trace::events_len(), 0);
}

#[test]
fn export_filters_by_query_id() {
    let _g = lock();
    trace::set_mode(Some(trace::Clock::Logical));
    let _ = traced_run(1);
    let all = trace::export_chrome(None);
    let only_q1 = trace::export_chrome(Some(1));
    trace::set_mode(None);
    trace::clear();
    assert!(all.len() > only_q1.len(), "filtered export must be smaller");
    assert!(
        !only_q1.contains("\"q\":0") && only_q1.contains("\"q\":1"),
        "filtered export must only contain the requested query"
    );
}
