//! End-to-end suite for the deterministic fault-injection subsystem.
//!
//! Pins the contracts the `faults` crate and the fault-aware round
//! engine promise at the public-API (`qens`) layer:
//!
//! * same seed ⇒ byte-identical `FaultTrace`, identical participant
//!   sets and bit-identical final models, for any pinned thread count;
//! * a federation with faults disabled (or an inert spec) behaves
//!   bit-identically to one that never heard of the subsystem;
//! * quorum loss is a recoverable error a stream runner records and
//!   moves past, never a panic;
//! * ranked standby promotion keeps the query-driven cohort at full
//!   strength under dropout where a tail-less policy collapses.

use qens::prelude::*;
use qens::telemetry;

/// One test here enables the process-global telemetry registry; every
/// test therefore serialises on this lock so concurrent federation runs
/// cannot bleed metrics into the telemetry assertions.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn build(seed: u64, spec: Option<FaultSpec>, tolerance: FaultTolerance) -> Federation {
    let mut b = FederationBuilder::new()
        .heterogeneous_nodes(8, 90)
        .clusters_per_node(4)
        .seed(seed)
        .epochs(4)
        .capacities(0.5, 2.0)
        .links((1e6, 20e6), (0.005, 0.05))
        .fault_tolerance(tolerance);
    if let Some(spec) = spec {
        b = b.faults(spec);
    }
    b.build()
}

fn probe_query(fed: &Federation) -> Query {
    fed.query_from_bounds(3, &[0.0, 20.0, 0.0, 45.0])
}

#[test]
fn fault_runs_are_identical_across_thread_counts() {
    let _guard = lock();
    let spec = FaultSpec::unreliable_edge(11);
    let outcomes: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let fed = build(5, Some(spec.clone()), FaultTolerance::full_strength());
            let mut config = fed.config().clone();
            config.threads = Some(threads);
            let q = probe_query(&fed);
            let out = qens::fedlearn::run_query(
                fed.network(),
                &q,
                PolicyKind::query_driven(3).build().as_ref(),
                &config,
            )
            .expect("faulty round completes at full strength");
            let loss = out.query_loss(fed.network(), &q).expect("query has data");
            (out, loss)
        })
        .collect();
    let (ref base, base_loss) = outcomes[0];
    assert!(!base.fault_trace.is_empty(), "spec should fire something");
    for (out, loss) in &outcomes[1..] {
        assert_eq!(out.fault_trace.to_json(), base.fault_trace.to_json());
        assert_eq!(
            out.final_cohort.iter().map(|p| p.node).collect::<Vec<_>>(),
            base.final_cohort.iter().map(|p| p.node).collect::<Vec<_>>(),
        );
        assert_eq!(loss.to_bits(), base_loss.to_bits());
        assert_eq!(out.accounting.retries, base.accounting.retries);
        assert_eq!(out.accounting.replacements, base.accounting.replacements);
    }
}

#[test]
fn disabled_faults_match_a_fault_free_federation_bitwise() {
    let _guard = lock();
    let plain = build(9, None, FaultTolerance::default());
    let inert = build(9, Some(FaultSpec::none()), FaultTolerance::default());
    let q = probe_query(&plain);
    let a = plain
        .run_query(&q, &PolicyKind::query_driven(3))
        .expect("plain run");
    let b = inert
        .run_query(&q, &PolicyKind::query_driven(3))
        .expect("inert run");
    assert!(a.fault_trace.is_empty() && b.fault_trace.is_empty());
    assert_eq!(
        a.query_loss(plain.network(), &q).unwrap().to_bits(),
        b.query_loss(inert.network(), &q).unwrap().to_bits()
    );
    assert_eq!(a.accounting.sim_seconds, b.accounting.sim_seconds);
    assert_eq!(
        a.accounting.bytes_transferred,
        b.accounting.bytes_transferred
    );
    assert_eq!(a.accounting.retries, 0);
    assert_eq!(a.accounting.replacements, 0);
}

#[test]
fn quorum_loss_is_recorded_by_the_stream_not_fatal() {
    let _guard = lock();
    // Certain dropout: every participant misses every round, and there
    // is no standby deep enough to save a full-strength quorum.
    let fed = build(
        13,
        Some(FaultSpec::dropout(13, 1.0)),
        FaultTolerance::full_strength(),
    );
    let wl = fed.workload(&WorkloadConfig {
        n_queries: 4,
        ..WorkloadConfig::paper_default(17)
    });
    let res = fed.run_workload(&wl, &PolicyKind::query_driven(3));
    assert_eq!(res.per_query.len(), 4);
    assert_eq!(res.failed_queries(), 4, "every round must lose quorum");
    for row in &res.per_query {
        match &row.error {
            Some(FederationError::QuorumLost { survivors, .. }) => {
                assert_eq!(*survivors, 0);
            }
            Some(FederationError::NoParticipants { .. }) => {} // empty region
            other => panic!("expected QuorumLost/NoParticipants, got {other:?}"),
        }
    }
    assert_eq!(res.mean_loss(), None);
}

#[test]
fn standby_promotion_outlives_dropout_where_tail_less_selection_fails() {
    let _guard = lock();
    let spec = FaultSpec::dropout(3, 0.4);
    let tolerance = FaultTolerance::full_strength();
    let fed = build(21, Some(spec), tolerance);
    let wl = fed.workload(&WorkloadConfig {
        n_queries: 10,
        ..WorkloadConfig::paper_default(29)
    });
    let ours = fed.run_workload(&wl, &PolicyKind::query_driven(3));
    let random = fed.run_workload(&wl, &PolicyKind::Random { l: 3, seed: 31 });
    let ours_ok = ours.per_query.len() - ours.failed_queries();
    let random_ok = random.per_query.len() - random.failed_queries();
    assert!(
        ours_ok > random_ok,
        "standby-backed selection completed {ours_ok} vs random {random_ok}"
    );
    let replacements: usize = ours.accounting.rows.iter().map(|r| r.replacements).sum();
    assert!(replacements > 0, "survival must come from promotions");
    // And the ledger's fault fields stayed internally consistent.
    for row in &ours.accounting.rows {
        assert!(row.replacements <= row.dropped_participants + row.replacements);
        assert!(row.sim_seconds.is_finite() && row.sim_seconds >= 0.0);
    }
}

#[test]
fn fault_telemetry_counters_mirror_the_ledger() {
    let _guard = lock();
    telemetry::set_enabled(true);
    telemetry::global().reset();
    let fed = build(
        7,
        Some(FaultSpec::unreliable_edge(19)),
        FaultTolerance::full_strength(),
    );
    let q = probe_query(&fed);
    let out = fed
        .run_query(&q, &PolicyKind::query_driven(3))
        .expect("faulty round completes");
    let snap = telemetry::global().snapshot();
    telemetry::set_enabled(false);
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    assert_eq!(
        counter("qens_fault_retries_total"),
        out.accounting.retries as u64
    );
    assert_eq!(
        counter("qens_fault_dropped_participants_total"),
        out.accounting.dropped_participants as u64
    );
    assert_eq!(
        counter("qens_fault_replacements_total"),
        out.accounting.replacements as u64
    );
    assert_eq!(
        counter("qens_fault_deadline_misses_total"),
        out.accounting.deadline_misses as u64
    );
}
