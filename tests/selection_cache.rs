//! Integration tests for the selection cache (quantized-query hashing,
//! per-node epoch invalidation, delta re-scoring):
//!
//! * cached and uncached selections must be **bitwise identical** — every
//!   ranking and every supporting-cluster overlap, for every query of a
//!   200-query stream — at any worker count (`QENS_THREADS` ∈ {1, 2, 4}
//!   in CI) and for every workload kind,
//! * summary mutations (`absorb` + re-quantisation) must invalidate
//!   exactly the changed node and still reproduce the uncached result,
//! * a drifting analytic focus — the paper's repetitive-stream regime —
//!   must be served mostly from the cache (hit rate ≥ 50%).

use qens::par::{self, ThreadPool};
use qens::prelude::*;
use qens::telemetry;
use qens::workload::generate;

fn network(seed: u64) -> EdgeNetwork {
    let nodes = scenario::heterogeneous_nodes(6, 80, seed);
    let mut net =
        EdgeNetwork::from_datasets(nodes.into_iter().map(|n| (n.name, n.dataset)).collect());
    net.quantize_all(5, seed);
    net
}

fn workload_of(kind: WorkloadKind, n_queries: usize, space: &HyperRect) -> QueryWorkload {
    generate(
        space,
        &WorkloadConfig {
            n_queries,
            halfwidth_frac: (0.10, 0.25),
            kind,
            seed: 4242,
        },
    )
}

fn assert_bitwise_eq(a: &Selection, b: &Selection, what: &str) {
    assert_eq!(a, b, "{what}: selections diverge");
    for (x, y) in a
        .participants
        .iter()
        .chain(&a.standby)
        .zip(b.participants.iter().chain(&b.standby))
    {
        assert_eq!(
            x.ranking.to_bits(),
            y.ranking.to_bits(),
            "{what}: ranking bits diverge on node {}",
            x.node
        );
        for (cx, cy) in x.supporting_clusters.iter().zip(&y.supporting_clusters) {
            assert_eq!(
                cx.overlap.to_bits(),
                cy.overlap.to_bits(),
                "{what}: overlap bits diverge on node {} cluster {}",
                x.node,
                cx.cluster_id
            );
        }
    }
}

/// The acceptance contract: for a 200-query drifting stream (and a
/// uniform and a hotspot stream alongside), the cached policy returns a
/// bitwise-identical `Selection` for every single query, at 1, 2 and 4
/// workers, while re-using one warm cache across all thread counts —
/// entries scored under one pool schedule must serve under another.
#[test]
fn cached_selections_are_bitwise_identical_across_threads_and_workloads() {
    let net = network(4);
    let space = net.global_space();
    let kinds: Vec<(&str, QueryWorkload)> = vec![
        ("uniform", workload_of(WorkloadKind::Uniform, 60, &space)),
        (
            "drifting",
            workload_of(
                WorkloadKind::Drifting {
                    step_frac: 0.02,
                    spread_frac: 0.03,
                },
                200,
                &space,
            ),
        ),
        (
            "hotspot",
            workload_of(
                WorkloadKind::Hotspot {
                    hotspots: 3,
                    spread_frac: 0.05,
                },
                60,
                &space,
            ),
        ),
    ];
    let plain = QueryDriven::top_l(3);
    for (name, wl) in &kinds {
        let cached = CachedQueryDriven::new(
            plain.clone(),
            CacheConfig {
                bucket_width: 5.0,
                ..CacheConfig::default()
            },
        );
        for threads in [1usize, 2, 4] {
            let pool = ThreadPool::new(threads);
            for q in &wl.queries {
                let ctx = SelectionContext::new(&net, q);
                let want = plain.select_with_pool(&ctx, &pool);
                let got = cached.select_with_pool(&ctx, &pool);
                assert_bitwise_eq(
                    &want,
                    &got,
                    &format!("{name} query {} at {threads} threads", q.id()),
                );
            }
        }
        let stats = cached.stats();
        assert_eq!(
            stats.hits + stats.misses,
            3 * wl.len() as u64,
            "{name}: every lookup is a hit or a miss"
        );
    }
}

/// Drifting streams are the cache's reason to exist: the analytic focus
/// random-walks, so consecutive rectangles land in the same buckets and
/// are served by delta re-scoring. The paper-scale 200-query stream must
/// hit at least half the time (it does much better; ≥ 50% is the floor
/// the ROADMAP promises).
#[test]
fn drifting_stream_hit_rate_is_at_least_half() {
    let net = network(4);
    let space = net.global_space();
    // Fixed halfwidth: the rectangles move with the drifting centre
    // only, so coarse buckets capture the repetition. (Randomised
    // per-query halfwidths would scatter the keys — that regime is the
    // bitwise test above, which asserts correctness, not hit rate.)
    let wl = generate(
        &space,
        &WorkloadConfig {
            n_queries: 200,
            halfwidth_frac: (0.15, 0.15),
            kind: WorkloadKind::Drifting {
                step_frac: 0.02,
                spread_frac: 0.03,
            },
            seed: 4242,
        },
    );
    let cached = CachedQueryDriven::new(
        QueryDriven::top_l(3),
        CacheConfig {
            bucket_width: 25.0,
            ..CacheConfig::default()
        },
    );
    let pool = par::sized(2);
    for q in &wl.queries {
        cached.select_with_pool(&SelectionContext::new(&net, q), &pool);
    }
    let stats = cached.stats();
    assert_eq!(stats.hits + stats.misses, 200);
    assert!(
        stats.hit_rate() >= 0.5,
        "drifting hit rate {:.3} below 0.5 ({stats:?})",
        stats.hit_rate()
    );
    assert!(stats.delta_hits > 0, "drift must exercise the delta path");
}

/// Mutating one node's data (stream absorb + re-quantisation) bumps its
/// summary epoch; the next lookup re-scores exactly that node and still
/// matches the uncached selection bitwise.
#[test]
fn absorb_invalidates_one_node_and_stays_exact() {
    let mut net = network(9);
    let plain = QueryDriven::top_l(3);
    let cached = CachedQueryDriven::with_defaults(plain.clone());
    let space = net.global_space();
    let wl = workload_of(WorkloadKind::Uniform, 8, &space);
    let pool = par::sized(2);
    for q in &wl.queries {
        let ctx = SelectionContext::new(&net, q);
        assert_bitwise_eq(
            &plain.select_with_pool(&ctx, &pool),
            &cached.select_with_pool(&ctx, &pool),
            "warmup",
        );
    }
    let before = cached.stats();
    assert_eq!(before.invalidations, 0, "nothing mutated yet");

    // Shift node 2's summaries: absorb fresh samples and re-quantise.
    let extra = scenario::heterogeneous_nodes(2, 30, 77)
        .into_iter()
        .next()
        .unwrap()
        .dataset;
    net.node_mut(NodeId(2)).absorb(&extra);
    net.node_mut(NodeId(2)).quantize(5, 9);

    for q in &wl.queries {
        let ctx = SelectionContext::new(&net, q);
        assert_bitwise_eq(
            &plain.select_with_pool(&ctx, &pool),
            &cached.select_with_pool(&ctx, &pool),
            "after absorb",
        );
    }
    let after = cached.stats();
    assert!(
        after.invalidations > before.invalidations,
        "epoch bump must trigger per-node invalidation ({after:?})"
    );
    // Only replays of already-cached rectangles: no new misses needed.
    assert_eq!(after.entries, before.entries, "no new entries inserted");
}

/// The cache's counters must reach the scrape surface: after a stream
/// that misses, hits exactly, delta-rescored and invalidated, the
/// Prometheus text exposition carries a sample, HELP and TYPE for every
/// `qens_cache_*` series, all format-conformant.
#[test]
fn prometheus_export_covers_cache_series() {
    let mut net = network(11);
    telemetry::set_enabled(true);
    let cached = CachedQueryDriven::new(
        QueryDriven::top_l(3),
        CacheConfig {
            bucket_width: 1e6, // one entry: drift is served by deltas
            ..CacheConfig::default()
        },
    );
    let q0 = Query::from_boundary_vec(0, &[0.0, 15.0, 0.0, 30.0]);
    let q1 = Query::from_boundary_vec(1, &[0.5, 15.5, 0.0, 30.0]);
    cached.select(&SelectionContext::new(&net, &q0)); // miss + entry
    cached.select(&SelectionContext::new(&net, &q0)); // exact hit
    cached.select(&SelectionContext::new(&net, &q1)); // delta hit
    let extra = scenario::heterogeneous_nodes(2, 30, 78)
        .into_iter()
        .next()
        .unwrap()
        .dataset;
    net.node_mut(NodeId(0)).absorb(&extra);
    net.node_mut(NodeId(0)).quantize(5, 11);
    cached.select(&SelectionContext::new(&net, &q1)); // invalidation
    let text = telemetry::export::to_prometheus(&telemetry::global().snapshot());
    telemetry::set_enabled(false);

    for series in [
        "qens_cache_hits_total",
        "qens_cache_misses_total",
        "qens_cache_invalidations_total",
        "qens_cache_entries_total",
        "qens_cache_entries",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(series)),
            "export must contain a {series} sample"
        );
        assert!(
            text.contains(&format!("# HELP {series} ")),
            "{series} must carry HELP"
        );
        assert!(
            text.contains(&format!("# TYPE {series} ")),
            "{series} must carry TYPE"
        );
    }
    // Exposition conformance over the cache lines specifically.
    for line in text
        .lines()
        .filter(|l| l.starts_with("qens_cache_") && !l.is_empty())
    {
        let (_, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in line: {line}"
        );
    }
    let stats = cached.stats();
    assert!(stats.misses >= 1 && stats.hits >= 2 && stats.invalidations >= 1);
}
