//! Integration tests coupling the telemetry subsystem to the pipeline:
//!
//! * the resource ledger (`QueryAccounting`) and the telemetry counters
//!   must tell the same story,
//! * parallel and serial federation must produce identical models AND
//!   identical counter totals (the determinism guard),
//! * per-query scopes must attribute deltas to the right query id,
//! * concurrent recording must be lossless,
//! * disabled mode must record nothing.
//!
//! The telemetry enablement flag and the registry are process-global, so
//! every test serialises on one lock and resets the registry first.

use qens::prelude::*;
use qens::telemetry;

/// Serialises tests that flip the process-global telemetry state.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn small_fed(seed: u64) -> Federation {
    FederationBuilder::new()
        .heterogeneous_nodes(4, 60)
        .clusters_per_node(3)
        .seed(seed)
        .epochs(2)
        .build()
}

/// The telemetry counters and the accounting rows agree exactly: every
/// resource the ledger reports is mirrored in `qens_edgesim_*` totals.
#[test]
fn accounting_rows_agree_with_counters() {
    let _g = lock();
    telemetry::set_enabled(true);
    telemetry::global().reset();

    let fed = small_fed(11);
    let global = fed.network().global_space();
    let y = global.interval(1);
    // A mix of full-space and partial queries; some may legally fail.
    let bounds = [(0.0, 40.0), (-100.0, 100.0), (5.0, 12.0), (-5.0, 60.0)];
    let mut rows = Vec::new();
    for (i, (lo, hi)) in bounds.iter().enumerate() {
        let q = fed.query_from_bounds(i as u64, &[*lo, *hi, y.lo(), y.hi()]);
        if let Ok(out) = fed.run_query(&q, &PolicyKind::query_driven(3)) {
            rows.push(out.accounting);
        }
    }
    assert!(!rows.is_empty(), "at least one query must complete");

    let snap = telemetry::global().snapshot();
    telemetry::set_enabled(false);

    let sum = |f: fn(&qens::edgesim::QueryAccounting) -> u64| rows.iter().map(f).sum::<u64>();
    assert_eq!(
        snap.counter("qens_edgesim_queries_total"),
        Some(rows.len() as u64)
    );
    assert_eq!(
        snap.counter("qens_edgesim_nodes_selected_total"),
        Some(sum(|r| r.nodes_selected as u64))
    );
    assert_eq!(
        snap.counter("qens_edgesim_samples_used_total"),
        Some(sum(|r| r.samples_used as u64))
    );
    assert_eq!(
        snap.counter("qens_edgesim_sample_visits_total"),
        Some(sum(|r| r.sample_visits as u64))
    );
    assert_eq!(
        snap.counter("qens_edgesim_bytes_transferred_total"),
        Some(sum(|r| r.bytes_transferred as u64))
    );
    let wall: f64 = rows.iter().map(|r| r.wall_seconds).sum();
    let got_wall = snap.gauge("qens_edgesim_wall_seconds").unwrap();
    assert!(
        (got_wall - wall).abs() <= 1e-9 * wall.max(1.0),
        "{got_wall} vs {wall}"
    );
    let sim: f64 = rows.iter().map(|r| r.sim_seconds).sum();
    let got_sim = snap.gauge("qens_edgesim_sim_seconds").unwrap();
    assert!(
        (got_sim - sim).abs() <= 1e-9 * sim.max(1.0),
        "{got_sim} vs {sim}"
    );
    // One histogram observation per completed query.
    assert_eq!(
        snap.histogram("qens_edgesim_query_bytes").unwrap().count,
        rows.len() as u64
    );
}

/// The determinism guard: a parallel federation round and a serial one
/// produce the same model (same loss) and, because counters are
/// order-independent, bit-identical counter totals and histogram counts.
#[test]
fn parallel_and_serial_runs_are_telemetry_identical() {
    let _g = lock();
    telemetry::set_enabled(true);

    let fed = small_fed(23);
    let q = fed.query_from_bounds(0, &fed.network().global_space().to_boundary_vec());
    let par_cfg = fed.config().clone();
    assert!(
        par_cfg.parallel,
        "default config must exercise the threaded path"
    );
    let ser_cfg = qens::fedlearn::FederationConfig {
        parallel: false,
        ..par_cfg.clone()
    };

    let mut runs = Vec::new();
    for cfg in [par_cfg, ser_cfg] {
        telemetry::global().reset();
        let policy = PolicyKind::query_driven(3).build();
        let out = qens::fedlearn::run_query(fed.network(), &q, policy.as_ref(), &cfg)
            .expect("full-space query must complete");
        let loss = out.query_loss(fed.network(), &q).expect("loss available");
        runs.push((loss, telemetry::global().snapshot()));
    }
    telemetry::set_enabled(false);

    let (par_loss, par_snap) = &runs[0];
    let (ser_loss, ser_snap) = &runs[1];
    assert_eq!(
        par_loss, ser_loss,
        "models diverged between parallel and serial"
    );
    // Domain counters must agree exactly. The `par` pool's own
    // scheduling counters (scopes/tasks/inline-tasks) are excluded:
    // whether work ran inline or as queued pool jobs is scheduling
    // detail, explicitly outside the determinism contract.
    let domain = |s: &telemetry::Snapshot| {
        s.counters
            .iter()
            .filter(|(name, _)| !name.starts_with("qens_par_"))
            .cloned()
            .collect::<Vec<_>>()
    };
    assert_eq!(
        domain(par_snap),
        domain(ser_snap),
        "domain counter totals diverged"
    );
    // Histogram *timings* differ run to run, but the number of
    // observations per metric is structural and must match (again minus
    // the pool's queue-depth scheduling histogram).
    let counts = |s: &telemetry::Snapshot| {
        s.histograms
            .iter()
            .filter(|h| !h.name.starts_with("qens_par_"))
            .map(|h| (h.name.clone(), h.count))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        counts(par_snap),
        counts(ser_snap),
        "histogram observation counts diverged"
    );
}

/// Per-query scopes attribute deltas to the right query id, and the
/// attributed parts sum to no more than the global totals.
#[test]
fn query_scopes_attribute_per_query_deltas() {
    let _g = lock();
    telemetry::set_enabled(true);
    telemetry::global().reset();

    let fed = small_fed(31);
    let bounds = fed.network().global_space().to_boundary_vec();
    for id in [7u64, 8u64] {
        let q = Query::from_boundary_vec(id, &bounds);
        fed.run_query(&q, &PolicyKind::query_driven(3))
            .expect("full-space query completes");
    }
    let snap = telemetry::global().snapshot();
    let queries = telemetry::global().query_snapshots();
    telemetry::set_enabled(false);

    let ids: Vec<u64> = queries.iter().map(|s| s.query_id).collect();
    assert_eq!(ids, [7, 8]);
    for name in [
        "qens_fedlearn_participants_total",
        "qens_edgesim_samples_used_total",
    ] {
        let per_query: u64 = queries.iter().filter_map(|s| s.metrics.counter(name)).sum();
        let global = snap.counter(name).unwrap_or(0);
        assert!(per_query > 0, "{name} not attributed to any query");
        assert_eq!(
            per_query, global,
            "{name}: per-query deltas must sum to the global total"
        );
    }
}

/// Concurrent recording from scoped threads loses no increments and no
/// histogram observations.
#[test]
fn concurrent_recording_is_lossless() {
    let _g = lock();
    telemetry::set_enabled(true);
    let reg = telemetry::Registry::new();
    let threads = 8;
    let per_thread = 10_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let reg = &reg;
            s.spawn(move || {
                let c = reg.counter("qens_test_concurrent_total");
                let h = reg.histogram("qens_test_concurrent_nanos");
                for i in 0..per_thread {
                    c.incr();
                    h.record(t * per_thread + i);
                }
            });
        }
    });
    telemetry::set_enabled(false);
    let snap = reg.snapshot();
    assert_eq!(
        snap.counter("qens_test_concurrent_total"),
        Some(threads * per_thread)
    );
    assert_eq!(
        snap.histogram("qens_test_concurrent_nanos").unwrap().count,
        threads * per_thread
    );
}

/// With telemetry disabled the whole pipeline records nothing — the
/// near-free disabled mode really is off.
#[test]
fn disabled_mode_records_nothing() {
    let _g = lock();
    telemetry::set_enabled(false);
    telemetry::global().reset();

    let fed = small_fed(41);
    let q = fed.query_from_bounds(0, &fed.network().global_space().to_boundary_vec());
    fed.run_query(&q, &PolicyKind::query_driven(3))
        .expect("query completes");

    let snap = telemetry::global().snapshot();
    assert!(snap.is_empty(), "disabled telemetry must record nothing");
    assert!(telemetry::global().query_snapshots().is_empty());
}
