//! Integration tests for the query profiler and SLO subsystem:
//!
//! * the folded-stack export (and the SVG rendered from it) must be
//!   **byte-identical** across worker counts under the logical clock —
//!   the same contract the Chrome trace export already carries,
//! * the slow-query flight recorder must retain an identical set of
//!   queries, in an identical order, at any `QENS_THREADS`,
//! * the SLO tracker's rolling windows must stay consistent across
//!   ring-buffer wrap-arounds,
//! * the new Prometheus series (`qens_build_info`,
//!   `qens_uptime_seconds`, `qens_slo_*`) must conform to the text
//!   exposition format.
//!
//! The trace collector, flight recorder, SLO tracker and metric
//! registry are process-global, so every test serialises on one lock
//! and clears the relevant state first.

use qens::prelude::*;
use qens::telemetry;
use qens::telemetry::profile;
use qens::telemetry::trace;

/// Serialises tests that flip the process-global telemetry state.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs three queries on a fresh logical-clock trace and returns the
/// aggregated profile artefacts plus the flight-recorder verdict.
fn profiled_run(threads: usize) -> (String, String, Vec<(u64, u64, usize)>) {
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(4, 60)
        .clusters_per_node(3)
        .seed(7)
        .epochs(2)
        .threads(threads)
        .faults(FaultSpec::unreliable_edge(7).with_dropout(0.3))
        .fault_tolerance(FaultTolerance::full_strength())
        .build();
    trace::clear();
    profile::reset();
    for qid in 0..3u64 {
        let q = fed.query_from_bounds(qid, &[0.0, 20.0, 0.0, 45.0]);
        // Quorum loss under the hostile plan is acceptable: failed
        // attempts still profile deterministically, which is exactly
        // what the byte-identity contract must cover.
        let _ = fed.run_query(&q, &PolicyKind::query_driven(2));
    }
    let agg = profile::aggregate(&trace::snapshot_events());
    let folded = profile::to_folded(&agg);
    let svg = profile::to_svg(&agg, "profile_slo test", "ticks");
    let slowest = profile::slowest()
        .iter()
        .map(|e| (e.query_id, e.duration, e.events.len()))
        .collect();
    (folded, svg, slowest)
}

#[test]
fn folded_profile_is_byte_identical_across_worker_counts() {
    let _g = lock();
    trace::set_mode(Some(trace::Clock::Logical));
    let serial = profiled_run(1);
    let two = profiled_run(2);
    let four = profiled_run(4);
    trace::set_mode(None);
    trace::clear();
    profile::reset();
    assert!(
        serial.0.lines().any(|l| l.starts_with("query ")),
        "folded export must contain the query root"
    );
    assert!(
        serial
            .0
            .lines()
            .any(|l| l.starts_with("query;fedlearn.round ")),
        "folded export must contain the round phase under the query"
    );
    assert_eq!(
        serial.0, two.0,
        "folded stacks must not depend on the worker count (1 vs 2)"
    );
    assert_eq!(
        serial.0, four.0,
        "folded stacks must not depend on the worker count (1 vs 4)"
    );
    assert_eq!(
        serial.1, four.1,
        "the SVG flamegraph must not depend on the worker count"
    );
    assert!(
        serial.1.starts_with("<svg ") && serial.1.ends_with("</svg>\n"),
        "the flamegraph must be a complete SVG document"
    );
}

#[test]
fn flight_recorder_retains_identical_slow_queries_across_worker_counts() {
    let _g = lock();
    trace::set_mode(Some(trace::Clock::Logical));
    let serial = profiled_run(1);
    let pooled = profiled_run(4);
    trace::set_mode(None);
    trace::clear();
    profile::reset();
    assert_eq!(
        serial.2.len(),
        3,
        "the recorder must retain all three queries (cap {})",
        profile::DEFAULT_FLIGHT_K
    );
    assert_eq!(
        serial.2, pooled.2,
        "flight-recorder contents (ids, tick spans, event counts) must \
         not depend on the worker count"
    );
    // Slowest first; ties break toward the lower query id.
    for pair in serial.2.windows(2) {
        assert!(
            pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
            "entries must be ordered by duration desc, then query id asc: {:?}",
            serial.2
        );
    }
}

#[test]
fn slo_windows_stay_consistent_across_ring_wrap() {
    let _g = lock();
    let cfg = profile::SloConfig {
        objective_nanos: 1_000,
        target: 0.9,
        window: 4,
    };
    let mut t = profile::SloTracker::new(cfg);
    // Fill the whole 6x ring (24 slots) with good verdicts, then push
    // 4 bad ones: the 1x window must read 100% bad while the 6x window
    // still remembers 20 good verdicts.
    for _ in 0..24 {
        assert!(t.observe(10), "10ns is within the 1µs objective");
    }
    assert_eq!(t.burn_rate_1x(), 0.0);
    assert_eq!(t.burn_rate_6x(), 0.0);
    for _ in 0..4 {
        assert!(!t.observe(10_000), "10µs must breach the 1µs objective");
    }
    // budget = 1 - 0.9 = 0.1; 1x window is all bad -> 1.0 / 0.1 = 10.
    assert!(
        (t.burn_rate_1x() - 10.0).abs() < 1e-9,
        "{}",
        t.burn_rate_1x()
    );
    // 6x window holds 4 bad of 24 -> (4/24) / 0.1 = 5/3.
    assert!(
        (t.burn_rate_6x() - (4.0 / 24.0) / 0.1).abs() < 1e-9,
        "{}",
        t.burn_rate_6x()
    );
    assert_eq!(t.good_total(), 24);
    assert_eq!(t.bad_total(), 4);
    // Another 24 good verdicts wrap the ring fully: the bad slots must
    // age out of both windows even though the lifetime totals persist.
    for _ in 0..24 {
        t.observe(10);
    }
    assert_eq!(t.burn_rate_1x(), 0.0);
    assert_eq!(t.burn_rate_6x(), 0.0);
    assert_eq!(t.bad_total(), 4, "lifetime counters must never age out");
}

#[test]
fn prometheus_export_covers_build_info_uptime_and_slo_series() {
    let _g = lock();
    telemetry::set_enabled(true);
    // One verdict on each side of the default 250ms objective so both
    // counters exist in the registry.
    profile::observe_query(1);
    profile::observe_query(10_000_000_000);
    let text = telemetry::export::to_prometheus(&telemetry::global().snapshot());
    telemetry::set_enabled(false);
    profile::reset();

    for series in [
        "qens_build_info",
        "qens_uptime_seconds",
        "qens_slo_good_total",
        "qens_slo_bad_total",
        "qens_slo_burn_rate_1x",
        "qens_slo_burn_rate_6x",
        "qens_slo_objective_seconds",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(series)),
            "export must contain a {series} sample"
        );
        assert!(
            text.contains(&format!("# HELP {series} ")),
            "{series} must carry HELP"
        );
        assert!(
            text.contains(&format!("# TYPE {series} ")),
            "{series} must carry TYPE"
        );
    }
    // Build info is the labels-as-metadata idiom: value is always 1.
    let build = text
        .lines()
        .find(|l| l.starts_with("qens_build_info{"))
        .expect("build info sample");
    assert!(build.contains("version=\""), "{build}");
    assert!(build.contains("profile=\""), "{build}");
    assert!(build.ends_with(" 1"), "{build}");
    // Text exposition conformance: every non-comment line is
    // `name[{labels}] value` with a parseable float value.
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line.rsplit_once(' ').expect("sample has a value");
        let bare = name.split('{').next().unwrap();
        assert!(
            bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "malformed metric name in line: {line}"
        );
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in line: {line}"
        );
    }
}
