//! Serde round-trip tests for the workspace's public data types.
//!
//! Every exchange in the system — summaries to the leader, models back
//! from participants, accounting rows into result files — is a
//! serialisable type. Derives compile even when they would fail at
//! runtime (e.g. a type whose invariants a default deserialiser cannot
//! rebuild), so these tests push the real types through JSON and back.

use qens::prelude::*;

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialise");
    serde_json::from_str(&json).expect("deserialise")
}

#[test]
fn models_round_trip_with_identical_predictions() {
    for kind in [ModelKind::Linear, ModelKind::Neural { hidden: 6 }] {
        let mut model = kind.build(3, 9);
        // Nudge weights away from init so the test is not trivial.
        let mut w = model.weights();
        for (i, wi) in w.iter_mut().enumerate() {
            *wi += 0.01 * i as f64;
        }
        model.set_weights(&w);
        let back: Model = round_trip(&model);
        let probe = [0.3, -1.2, 2.5];
        assert_eq!(back.predict_row(&probe), model.predict_row(&probe));
        assert_eq!(back.kind(), model.kind());
    }
}

#[test]
fn cluster_summaries_round_trip() {
    let fed = FederationBuilder::new().heterogeneous_nodes(3, 60).seed(1).epochs(1).build();
    for node in fed.network().nodes() {
        for s in node.summaries() {
            let back: qens::cluster::ClusterSummary = round_trip(s);
            assert_eq!(&back, s);
        }
    }
}

#[test]
fn selections_round_trip() {
    let fed = FederationBuilder::new().heterogeneous_nodes(4, 80).seed(2).epochs(1).build();
    let q = fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
    let ctx = SelectionContext::new(fed.network(), &q);
    let sel = QueryDriven::top_l(3).select(&ctx);
    let back: Selection = round_trip(&sel);
    assert_eq!(back, sel);
    assert_eq!(back.lambda_weights(), sel.lambda_weights());
}

#[test]
fn queries_and_rects_round_trip() {
    let q = Query::from_boundary_vec(7, &[0.0, 1.5, -2.0, 3.0, 10.0, 20.0]);
    let back: Query = round_trip(&q);
    assert_eq!(back, q);
    let r = HyperRect::from_boundary_vec(&[0.0, 4.0, -1.0, 1.0]);
    let back: HyperRect = round_trip(&r);
    assert_eq!(back, r);
}

#[test]
fn accounting_and_stream_results_round_trip() {
    let fed = FederationBuilder::new().heterogeneous_nodes(4, 60).seed(3).epochs(2).build();
    let wl = fed.workload(&WorkloadConfig { n_queries: 4, ..WorkloadConfig::paper_default(5) });
    let res = fed.run_workload(&wl, &PolicyKind::query_driven(2));
    let back: StreamResult = round_trip(&res);
    assert_eq!(back, res);
    assert_eq!(back.mean_loss(), res.mean_loss());
}

#[test]
fn global_model_round_trips_through_json() {
    let fed = FederationBuilder::new().heterogeneous_nodes(4, 60).seed(4).epochs(2).build();
    let q = fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
    let out = fed.run_query(&q, &PolicyKind::query_driven(2)).unwrap();
    let back: GlobalModel = round_trip(&out.global);
    let probe = [0.42];
    assert_eq!(back.predict_row(&probe), out.global.predict_row(&probe));
}

#[test]
fn policy_kinds_round_trip() {
    for p in [
        PolicyKind::query_driven(3),
        PolicyKind::QueryDrivenThreshold { epsilon: 0.1, psi: 0.4 },
        PolicyKind::Random { l: 2, seed: 9 },
        PolicyKind::GameTheory { leader: 1, l: 2, seed: 9 },
        PolicyKind::DataCentric { l: 2 },
        PolicyKind::FairStochastic { l: 2, seed: 9 },
        PolicyKind::AllNodes,
    ] {
        let back: PolicyKind = round_trip(&p);
        assert_eq!(back, p);
        // The rebuilt policy keeps working.
        assert!(!back.name().is_empty());
    }
}

#[test]
fn station_records_round_trip_including_missing_cells() {
    use qens::airdata::{generate, profile};
    let data = generate::generate_station(
        &profile::StationProfile::of("Shunyi"),
        &generate::GeneratorConfig { missing_rate: 0.2, ..generate::GeneratorConfig::short(50, 8) },
    );
    let json = serde_json::to_string(&data).expect("serialise");
    let back: generate::StationData = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back.records.len(), data.records.len());
    for (a, b) in back.records.iter().zip(&data.records) {
        for (x, y) in a.values.iter().zip(&b.values) {
            // NaN (missing) must survive the round trip as NaN.
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
