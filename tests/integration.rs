//! Cross-crate integration tests: the individual substrates working
//! together the way the paper's system composes them.

use qens::prelude::*;

/// Builds the standard heterogeneous test federation.
fn hetero_fed(seed: u64) -> Federation {
    FederationBuilder::new()
        .heterogeneous_nodes(8, 150)
        .clusters_per_node(5)
        .seed(seed)
        .epochs(8)
        .build()
}

#[test]
fn summaries_are_the_only_leader_visible_state() {
    let fed = hetero_fed(1);
    // Every node reports at most K summaries, each with a rect in the
    // joint space and a positive member count; the wire size is O(K*d).
    for node in fed.network().nodes() {
        assert!(node.k() >= 1 && node.k() <= 5);
        let mut total = 0;
        for s in node.summaries() {
            assert_eq!(s.rect.dim(), node.joint_dim());
            assert!(s.size > 0);
            assert!(s.wire_bytes() < 128);
            total += s.size;
        }
        assert_eq!(
            total,
            node.len(),
            "summaries must partition the node's data"
        );
    }
}

#[test]
fn ranking_prefers_nodes_whose_data_matches_the_query() {
    let fed = hetero_fed(2);
    // The heterogeneous scenario puts the leader pattern on nodes 0 and 1
    // (x in [0,21], y = 2x+3); this query targets exactly that region.
    let q = fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
    let out = fed.run_query(&q, &PolicyKind::query_driven(8)).unwrap();
    let selected: Vec<usize> = out
        .selection
        .participants
        .iter()
        .map(|p| p.node.0)
        .collect();
    assert!(
        selected.contains(&0) && selected.contains(&1),
        "selected {selected:?}"
    );
    // And they rank at the top.
    assert!(selected[0] == 0 || selected[0] == 1);
    assert!(selected[1] == 0 || selected[1] == 1);
}

#[test]
fn training_respects_data_selectivity() {
    let fed = hetero_fed(3);
    let q = fed.query_from_bounds(0, &[0.0, 10.0, 0.0, 25.0]);
    let out = fed.run_query(&q, &PolicyKind::query_driven(3)).unwrap();
    for p in &out.selection.participants {
        let node = fed.network().node(p.node);
        let used = p.training_samples(fed.network());
        assert!(used <= node.len());
        // The sub-query covers only part of the leader nodes' space, so
        // at least one participant must have trained on a strict subset.
        if p.node.0 <= 1 {
            assert!(used < node.len(), "node {} trained on all its data", p.node);
        }
    }
}

#[test]
fn aggregation_weights_match_selection_rankings() {
    let fed = hetero_fed(4);
    let q = fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
    let out = fed.run_query(&q, &PolicyKind::query_driven(4)).unwrap();
    match &out.global {
        GlobalModel::Ensemble { lambdas, members } => {
            assert_eq!(members.len(), out.selection.len());
            assert!((lambdas.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let expected = out.selection.lambda_weights();
            for (a, b) in lambdas.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-9);
            }
        }
        other => panic!("expected ensemble, got {other:?}"),
    }
}

#[test]
fn accounting_is_internally_consistent() {
    let fed = hetero_fed(5);
    let wl = fed.workload(&WorkloadConfig {
        n_queries: 10,
        ..WorkloadConfig::paper_default(5)
    });
    let res = fed.run_workload(&wl, &PolicyKind::query_driven(3));
    for (row, q) in res
        .accounting
        .rows
        .iter()
        .zip(res.per_query.iter().filter(|r| r.error.is_none()))
    {
        assert_eq!(row.query_id, q.query_id);
        assert!(row.samples_used <= row.samples_total);
        assert!(row.sim_seconds > 0.0);
        assert!(row.wall_seconds >= 0.0);
        assert!(row.bytes_transferred > 0);
        assert!((row.data_fraction() - q.data_fraction).abs() < 1e-12);
    }
}

#[test]
fn air_quality_pipeline_runs_end_to_end() {
    let fed = FederationBuilder::new()
        .air_quality_nodes(10, 24 * 30)
        .seed(7)
        .epochs(5)
        .build();
    assert_eq!(fed.network().len(), 10);
    let wl = fed.workload(&WorkloadConfig {
        n_queries: 6,
        ..WorkloadConfig::paper_default(2)
    });
    let res = fed.run_workload(&wl, &PolicyKind::query_driven(4));
    let ok = res.per_query.len() - res.failed_queries();
    assert!(ok >= 3, "too many failed queries: {}", res.failed_queries());
    for r in res.per_query.iter().filter(|r| r.error.is_none()) {
        if let Some(loss) = r.loss {
            assert!(loss.is_finite() && loss >= 0.0);
        }
        assert!(r.nodes_selected >= 1 && r.nodes_selected <= 4);
    }
}

#[test]
fn nn_federation_runs_and_stays_finite() {
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(5, 80)
        .model(ModelKind::Neural { hidden: 8 })
        .seed(9)
        .epochs(5)
        .build();
    let q = fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
    let out = fed.run_query(&q, &PolicyKind::query_driven(3)).unwrap();
    let loss = out.query_loss(fed.network(), &q).unwrap();
    assert!(loss.is_finite() && loss >= 0.0);
}

#[test]
fn gt_baseline_has_visible_selection_overhead() {
    let fed = hetero_fed(11);
    let q = fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
    let ours = fed.run_query(&q, &PolicyKind::query_driven(3)).unwrap();
    let gt = fed
        .run_query(
            &q,
            &PolicyKind::GameTheory {
                leader: 0,
                l: 3,
                seed: 3,
            },
        )
        .unwrap();
    // GT pays a probe round before training: more simulated time and more
    // bytes than the summary-only query-driven mechanism.
    assert!(gt.accounting.sim_seconds > ours.accounting.sim_seconds);
    assert!(gt.accounting.bytes_transferred > ours.accounting.bytes_transferred);
}

#[test]
fn csv_round_trip_feeds_the_same_pipeline() {
    use qens::airdata::{csvio, generate, profile, scenario, Feature};
    // Generate one station, write CSV, read it back, and build a node.
    let data = generate::generate_station(
        &profile::StationProfile::of("Tiantan"),
        &generate::GeneratorConfig::short(300, 4),
    );
    let csv = csvio::to_csv_string(&data);
    let mut reread = csvio::from_csv_reader(csv.as_bytes()).unwrap();
    qens::airdata::impute::forward_fill(&mut reread);
    let x = reread.to_matrix(&[Feature::Pm10]);
    let y = reread.feature_column(Feature::Pm25);
    let ds = DenseDataset::new(x, y);
    assert_eq!(ds.len(), 300);
    // The same scenario helper path accepts it.
    let nodes = scenario::realistic_nodes(2, 100, 1, Feature::Pm10, Feature::Pm25);
    assert_eq!(nodes.len(), 2);
}

#[test]
fn multi_feature_federation_runs_in_higher_dimensions() {
    use qens::airdata::Feature;
    // Predict O3 from (TEMP, WSPM, NO2): a 4-dimensional joint space.
    let fed = FederationBuilder::new()
        .air_quality_multi(
            6,
            24 * 20,
            vec![Feature::Temp, Feature::Wspm, Feature::No2],
            Feature::O3,
        )
        .seed(21)
        .epochs(5)
        .build();
    assert_eq!(fed.network().nodes()[0].joint_dim(), 4);
    for node in fed.network().nodes() {
        for s in node.summaries() {
            assert_eq!(s.rect.dim(), 4);
        }
    }
    // A 4-d query: warm, breezy, moderate-NO2 hours, any O3 value.
    let space = fed.network().global_space();
    let o3 = space.interval(3);
    let q = fed.query_from_bounds(0, &[15.0, 35.0, 1.0, 4.0, 10.0, 80.0, o3.lo(), o3.hi()]);
    let out = fed
        .run_query(&q, &PolicyKind::query_driven(3))
        .expect("summer region has data");
    assert!(!out.selection.is_empty());
    if let Some(loss) = out.query_loss(fed.network(), &q) {
        assert!(loss.is_finite() && loss >= 0.0);
    }
    // Data selectivity still bites in higher dimensions.
    assert!(out.accounting.samples_used < out.accounting.samples_total);
}

#[test]
fn leader_cardinality_estimates_track_reality() {
    let fed = hetero_fed(12);
    let q = fed.query_from_bounds(0, &[0.0, 15.0, 0.0, 35.0]);
    let mut est_total = 0.0;
    let mut exact_total = 0;
    for node in fed.network().nodes() {
        est_total += node.estimated_query_cardinality(&q);
        exact_total += node.exact_query_cardinality(&q);
    }
    assert!(exact_total > 0, "query region must contain data");
    let err = (est_total - exact_total as f64).abs() / exact_total as f64;
    assert!(
        err < 0.5,
        "estimate {est_total} vs exact {exact_total} (err {err})"
    );
}

#[test]
fn slow_links_raise_round_time() {
    use qens::fedlearn::{run_query, FederationConfig};
    use qens::selection::QueryDriven;
    let nodes = scenario::heterogeneous_nodes(5, 100, 3);
    let build = |slow: bool| {
        let mut net = EdgeNetwork::from_datasets(
            nodes
                .iter()
                .map(|n| (n.name.clone(), n.dataset.clone()))
                .collect(),
        );
        if slow {
            net = net.with_random_links((1e3, 2e3), (0.5, 1.0), 7);
        }
        net.quantize_all(5, 1);
        net
    };
    let fast_net = build(false);
    let slow_net = build(true);
    let q = Query::from_boundary_vec(0, &[0.0, 20.0, 0.0, 45.0]);
    let cfg = FederationConfig {
        train: TrainConfig::paper_lr(1).with_epochs(3),
        ..FederationConfig::paper_lr(1)
    };
    let fast = run_query(&fast_net, &q, &QueryDriven::top_l(3), &cfg).unwrap();
    let slow = run_query(&slow_net, &q, &QueryDriven::top_l(3), &cfg).unwrap();
    assert!(
        slow.accounting.sim_seconds > fast.accounting.sim_seconds + 0.4,
        "slow links ({}) must dominate fast ({})",
        slow.accounting.sim_seconds,
        fast.accounting.sim_seconds
    );
}

#[test]
fn multi_round_and_stage_order_are_deterministic() {
    let run = |rounds: usize, order: StageOrder| {
        let fed = FederationBuilder::new()
            .heterogeneous_nodes(5, 80)
            .seed(31)
            .epochs(4)
            .rounds(rounds)
            .stage_order(order)
            .build();
        let q = fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]);
        let out = fed.run_query(&q, &PolicyKind::query_driven(3)).unwrap();
        out.query_loss(fed.network(), &q).unwrap()
    };
    for (rounds, order) in [
        (1, StageOrder::Sequential),
        (1, StageOrder::Interleaved),
        (3, StageOrder::Sequential),
    ] {
        assert_eq!(
            run(rounds, order),
            run(rounds, order),
            "rounds={rounds} order={order:?}"
        );
    }
    // The variants genuinely differ from each other.
    assert_ne!(
        run(1, StageOrder::Sequential),
        run(1, StageOrder::Interleaved)
    );
}

#[test]
fn private_summaries_still_select_sensibly() {
    let nodes = scenario::heterogeneous_nodes(8, 150, 5);
    let mut net =
        EdgeNetwork::from_datasets(nodes.into_iter().map(|n| (n.name, n.dataset)).collect());
    net.quantize_all_private(5, 2, 0.5);
    let q = Query::from_boundary_vec(0, &[0.0, 20.0, 0.0, 45.0]);
    let ctx = SelectionContext::new(&net, &q);
    let sel = QueryDriven::top_l(3).select(&ctx);
    assert!(
        !sel.is_empty(),
        "noised summaries must still support the leader query"
    );
    // The leader-pattern nodes (0 and 1) still surface under eps = 0.5.
    let picked: Vec<usize> = sel.participants.iter().map(|p| p.node.0).collect();
    assert!(
        picked.contains(&0) || picked.contains(&1),
        "picked {picked:?}"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let fed = hetero_fed(42);
        let wl = fed.workload(&WorkloadConfig {
            n_queries: 5,
            ..WorkloadConfig::paper_default(42)
        });
        let res = fed.run_workload(&wl, &PolicyKind::query_driven(3));
        res.per_query
            .iter()
            .filter_map(|r| r.loss)
            .collect::<Vec<f64>>()
    };
    assert_eq!(run(), run());
}
