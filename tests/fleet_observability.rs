//! Integration tests for the fleet observability subsystem
//! (`telemetry::fleet` + `telemetry::journal`):
//!
//! * scorecards and the logical-clock journal export must be
//!   **byte-identical** across worker counts — including under a
//!   hostile fault plan (the same contract `faults::FaultTrace` and the
//!   trace subsystem honour),
//! * dropout and standby promotion must be attributed to the *right*
//!   nodes: per-node journal event counts must equal the scorecard
//!   counters,
//! * registry totals must agree with the `QueryAccounting` ledger on
//!   streams where every query completed,
//! * a disabled fleet (`QENS_FLEET=0` / `FederationBuilder::fleet(false)`)
//!   must record nothing and leave query results bitwise unchanged.
//!
//! The registry and journal are process-global, so every test
//! serialises on one lock and resets both first.

use qens::prelude::*;
use qens::telemetry::fleet;
use qens::telemetry::journal;
use qens::telemetry::trace::Clock;
use qens::workload::{WorkloadConfig, WorkloadKind};

/// Serialises tests that flip the process-global fleet state.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

const N_QUERIES: usize = 200;

fn build_fed(threads: usize, dropout: Option<(f64, FaultTolerance)>, fleet_on: bool) -> Federation {
    let mut b = FederationBuilder::new()
        .heterogeneous_nodes(6, 80)
        .clusters_per_node(3)
        .seed(11)
        .epochs(3)
        .threads(threads)
        .fleet(fleet_on);
    if let Some((rate, tolerance)) = dropout {
        b = b
            .faults(FaultSpec::dropout(11, rate))
            .fault_tolerance(tolerance);
    }
    b.build()
}

/// Runs one 200-query stream and returns the deterministic fleet JSON,
/// the full logical-clock journal export, and the stream result.
fn run_fleet_stream(
    threads: usize,
    kind: WorkloadKind,
    dropout: Option<(f64, FaultTolerance)>,
    halfwidth_frac: (f64, f64),
) -> (String, String, qens::fedlearn::StreamResult) {
    fleet::reset();
    journal::clear();
    let fed = build_fed(threads, dropout, true);
    let wl = fed.workload(&WorkloadConfig {
        n_queries: N_QUERIES,
        kind,
        halfwidth_frac,
        ..WorkloadConfig::paper_default(77)
    });
    let policy = PolicyKind::query_driven(3);
    let stream = qens::fedlearn::run_stream(
        fed.network(),
        &wl,
        fed.build_policy(&policy).as_ref(),
        fed.config(),
    );
    (
        fleet::to_json(),
        journal::to_jsonl(Clock::Logical, None),
        stream,
    )
}

fn workloads() -> [WorkloadKind; 3] {
    [
        WorkloadKind::Uniform,
        WorkloadKind::Drifting {
            step_frac: 0.02,
            spread_frac: 0.03,
        },
        WorkloadKind::Hotspot {
            hotspots: 3,
            spread_frac: 0.05,
        },
    ]
}

fn cleanup() {
    fleet::set_enabled(false);
    fleet::reset();
    journal::clear();
}

#[test]
fn scorecards_and_journal_are_byte_identical_across_threads() {
    let _g = lock();
    journal::set_capacity(1 << 14);
    for kind in workloads() {
        // A hostile plan on every stream: dropout, retries, standby
        // promotion and the occasional quorum loss must all replay
        // identically regardless of the worker count.
        let (base_fleet, base_journal, _) = run_fleet_stream(
            1,
            kind.clone(),
            Some((0.2, FaultTolerance::full_strength())),
            (0.05, 0.30),
        );
        assert!(base_fleet.contains("\"skew\":{"), "fleet doc: {base_fleet}");
        assert!(
            base_journal.contains("\"kind\":\"node_dropped\""),
            "the 20% dropout plan must surface drops"
        );
        assert!(!base_journal.contains("wall_nanos"));
        for threads in [2usize, 4] {
            let (f, j, _) = run_fleet_stream(
                threads,
                kind.clone(),
                Some((0.2, FaultTolerance::full_strength())),
                (0.05, 0.30),
            );
            assert_eq!(
                f, base_fleet,
                "fleet JSON diverged at {threads} threads ({kind:?})"
            );
            assert_eq!(
                j, base_journal,
                "journal export diverged at {threads} threads ({kind:?})"
            );
        }
    }
    cleanup();
}

/// Counts journal events of `kind` attributed to each node.
fn events_per_node(journal_doc: &str, kind: &str) -> std::collections::BTreeMap<u64, u64> {
    let needle = format!("\"kind\":\"{kind}\"");
    let mut counts = std::collections::BTreeMap::new();
    for line in journal_doc.lines().filter(|l| l.contains(&needle)) {
        let node = line
            .split("\"node\":")
            .nth(1)
            .and_then(|rest| {
                rest.split(|c: char| !c.is_ascii_digit())
                    .next()
                    .filter(|s| !s.is_empty())
            })
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("{kind} event without node attribution: {line}"));
        *counts.entry(node).or_insert(0) += 1;
    }
    counts
}

#[test]
fn faulted_run_attributes_drops_and_promotions_to_the_right_nodes() {
    let _g = lock();
    journal::set_capacity(1 << 14);
    let (fleet_doc, journal_doc, _) = run_fleet_stream(
        1,
        WorkloadKind::Uniform,
        Some((0.2, FaultTolerance::full_strength())),
        (0.05, 0.30),
    );
    let cards = fleet::snapshot();
    let dropped_events = events_per_node(&journal_doc, "node_dropped");
    let promoted_events = events_per_node(&journal_doc, "standby_promoted");
    assert!(
        !dropped_events.is_empty() && !promoted_events.is_empty(),
        "the fault plan must produce drops and promotions"
    );
    // Scorecard counters and journal attribution are two views of the
    // same round loop: they must agree node by node.
    for card in &cards {
        assert_eq!(
            card.dropped,
            dropped_events.get(&card.node).copied().unwrap_or(0),
            "node {} dropped",
            card.node
        );
        assert_eq!(
            card.promoted,
            promoted_events.get(&card.node).copied().unwrap_or(0),
            "node {} promoted",
            card.node
        );
    }
    // Every journal-attributed node exists in the registry.
    for node in dropped_events.keys().chain(promoted_events.keys()) {
        assert!(
            cards.iter().any(|c| c.node == *node),
            "journal names node {node} missing from the registry"
        );
    }
    assert!(fleet_doc.contains("\"fleet_size\":6"));
    cleanup();
}

#[test]
fn registry_totals_agree_with_the_accounting_ledger() {
    let _g = lock();
    journal::set_capacity(1 << 14);
    // The ledger only rows *completed* queries, while the registry (by
    // design) counts all activity — including rounds of queries that
    // later lost quorum. The journal attributes every event to its
    // query, so failed-query activity can be subtracted exactly and the
    // remainder must match the ledger to the unit.
    let (_, journal_doc, stream) = run_fleet_stream(
        1,
        WorkloadKind::Uniform,
        Some((0.2, FaultTolerance::full_strength())),
        (0.05, 0.30),
    );
    let failed: std::collections::HashSet<u64> = stream
        .per_query
        .iter()
        .filter(|q| q.error.is_some())
        .map(|q| q.query_id)
        .collect();
    let in_failed = |kind: &str| -> u64 {
        let needle = format!("\"kind\":\"{kind}\"");
        journal_doc
            .lines()
            .filter(|l| l.contains(&needle))
            .filter(|l| {
                l.split("\"query\":")
                    .nth(1)
                    .and_then(|rest| {
                        rest.split(|c: char| !c.is_ascii_digit())
                            .next()?
                            .parse::<u64>()
                            .ok()
                    })
                    .is_some_and(|q| failed.contains(&q))
            })
            .count() as u64
    };
    let cards = fleet::snapshot();
    let fleet_totals = (
        cards.iter().map(|c| c.retried).sum::<u64>(),
        cards.iter().map(|c| c.dropped).sum::<u64>() - in_failed("node_dropped"),
        cards.iter().map(|c| c.promoted).sum::<u64>() - in_failed("standby_promoted"),
        cards.iter().map(|c| c.selected).sum::<u64>() - in_failed("node_selected"),
    );
    let rows = &stream.accounting.rows;
    let ledger_totals = (
        rows.iter().map(|r| r.retries).sum::<usize>() as u64,
        rows.iter().map(|r| r.dropped_participants).sum::<usize>() as u64,
        rows.iter().map(|r| r.replacements).sum::<usize>() as u64,
        rows.iter().map(|r| r.nodes_selected).sum::<usize>() as u64,
    );
    assert_eq!(
        fleet_totals,
        ledger_totals,
        "(retried, dropped, promoted, selected) must match the ledger \
         once failed-query activity is removed ({} failed)",
        failed.len()
    );
    assert!(
        fleet_totals.1 > 0 && fleet_totals.2 > 0,
        "the plan must exercise the fault counters: {fleet_totals:?}"
    );
    assert_eq!(fleet::queries(), N_QUERIES as u64);
    cleanup();
}

#[test]
fn disabled_fleet_is_inert_and_leaves_results_bitwise_unchanged() {
    let _g = lock();
    // Enabled run first.
    let (_, _, enabled) = run_fleet_stream(
        1,
        WorkloadKind::Uniform,
        Some((0.2, FaultTolerance::full_strength())),
        (0.05, 0.30),
    );
    // Disabled run: same federation, fleet(false).
    fleet::reset();
    journal::clear();
    let fed = build_fed(1, Some((0.2, FaultTolerance::full_strength())), false);
    assert!(!fleet::enabled(), "fleet(false) must disable the registry");
    let wl = fed.workload(&WorkloadConfig {
        n_queries: N_QUERIES,
        kind: WorkloadKind::Uniform,
        ..WorkloadConfig::paper_default(77)
    });
    let policy = PolicyKind::query_driven(3);
    let disabled = qens::fedlearn::run_stream(
        fed.network(),
        &wl,
        fed.build_policy(&policy).as_ref(),
        fed.config(),
    );
    assert!(
        fleet::snapshot().is_empty() && fleet::queries() == 0 && journal::len() == 0,
        "a disabled fleet must record nothing"
    );
    // Observability must never perturb the computation: identical
    // losses, bit for bit.
    assert_eq!(enabled.per_query.len(), disabled.per_query.len());
    for (a, b) in enabled.per_query.iter().zip(disabled.per_query.iter()) {
        assert_eq!(a.query_id, b.query_id);
        assert_eq!(
            a.loss.map(f64::to_bits),
            b.loss.map(f64::to_bits),
            "query {} loss changed with fleet off",
            a.query_id
        );
    }
    cleanup();
}
