//! Allocation discipline of the spatial-index bulk build (ISSUE 10's
//! fleet-memory blind spot): building a [`SpatialIndex`] over N rects
//! must stay O(N) in allocated *bytes* and must not allocate per probe.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the
//! measurement windows run on this test binary's main thread with no
//! other tests in the file, so the deltas belong to the code under
//! test. Thresholds are deliberately loose (2.5x the linear
//! extrapolation plus a fixed slack) — the assertion is about growth
//! *shape*, not exact byte counts, so allocator or std changes don't
//! turn it flaky.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use qens::geom::index::{GridConfig, SpatialIndexBuilder};
use qens::geom::{HyperRect, Interval};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn measured<R>(f: impl FnOnce() -> R) -> (R, u64, u64) {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = BYTES.load(Ordering::Relaxed);
    let r = f();
    (
        r,
        ALLOCS.load(Ordering::Relaxed) - a0,
        BYTES.load(Ordering::Relaxed) - b0,
    )
}

/// Deterministic arithmetic rects over a [0, 1000]² space — no RNG, no
/// hidden allocation.
fn rect(i: usize) -> HyperRect {
    let x = (i % 997) as f64;
    let y = (i % 499) as f64 * 2.0;
    HyperRect::new(vec![Interval::new(x, x + 2.0), Interval::new(y, y + 2.0)])
}

fn build_bytes(n: usize) -> (u64, u64) {
    // Rect construction allocates per item by design (a Vec<Interval>
    // each); build it outside the window so the measurement sees only
    // the index's own appetite.
    let rects: Vec<HyperRect> = (0..n).map(rect).collect();
    let ((), allocs, bytes) = measured(|| {
        let mut b = SpatialIndexBuilder::with_capacity(2, n);
        for r in &rects {
            b.push(r);
        }
        let index = b.build(GridConfig::default());
        assert_eq!(index.len(), n);
        // Probing the finished index must not allocate per item scanned
        // (the SoA arrays are read in place; only the candidate vector
        // and probe bookkeeping grow).
        let q = HyperRect::new(vec![
            Interval::new(100.0, 140.0),
            Interval::new(100.0, 140.0),
        ]);
        let (cands, _probe) = index.candidates(&q);
        assert!(!cands.is_empty(), "probe should find something");
    });
    (allocs, bytes)
}

/// 4x the items must cost ~4x the bytes (O(N), not O(N²) or a hidden
/// clone of anything per-node-sized), with an alloc *count* that grows
/// far slower than N (bulk SoA arrays, not per-item boxes).
#[test]
fn index_build_is_linear_in_allocated_bytes() {
    // Warm one build so lazy one-time allocations (telemetry registry,
    // etc.) don't land in the measured windows.
    let _ = build_bytes(1_000);
    let (allocs_small, bytes_small) = build_bytes(10_000);
    let (allocs_big, bytes_big) = build_bytes(40_000);
    assert!(
        bytes_big <= bytes_small * 4 * 5 / 2 + 1_000_000,
        "4x items cost {bytes_big} bytes vs {bytes_small} at 1x — super-linear growth"
    );
    // Alloc count: grid cells hold Vec<u32> (one per cell, ~sqrt-ish of
    // the domain count), so the count may grow — but it must stay well
    // below one allocation per item.
    assert!(
        allocs_big < 40_000 / 2 + 4_096,
        "{allocs_big} allocations for 40k items — per-item allocation crept in \
         (10k items took {allocs_small})"
    );
}
