//! Property-style tests spanning the whole pipeline: random node
//! populations and random queries must uphold the system invariants.
//! (Deterministic sweeps over the in-tree RNG; no proptest needed
//! offline.)

use qens::airdata::scenario::{nodes_from_specs, NodeSpec};
use qens::linalg::rng::{rng_for, Rng};
use qens::prelude::*;

const CASES: usize = 16;

/// A population of 2–6 synthetic regression nodes with random ranges
/// and slopes.
fn population(rng: &mut impl Rng) -> Vec<NodeSpec> {
    let count = rng.gen_range(2..6usize);
    (0..count)
        .map(|_| {
            let lo = rng.gen_range(-50.0..50.0);
            let span = rng.gen_range(5.0..60.0);
            NodeSpec {
                x_range: (lo, lo + span),
                slope: rng.gen_range(-4.0..4.0),
                intercept: rng.gen_range(-20.0..20.0),
                noise_std: rng.gen_range(0.5..5.0),
            }
        })
        .collect()
}

fn build_fed(specs: &[NodeSpec], seed: u64) -> Federation {
    let nodes = nodes_from_specs(specs, 60, seed);
    FederationBuilder::new()
        .datasets(nodes.into_iter().map(|n| (n.name, n.dataset)).collect())
        .clusters_per_node(4)
        .seed(seed)
        .epochs(3)
        .build()
}

/// Whatever the population and query, a successful round satisfies the
/// resource and weight invariants.
#[test]
fn round_invariants() {
    let mut rng = rng_for(0xCC, 1);
    for _ in 0..CASES {
        let specs = population(&mut rng);
        let seed = rng.gen_range(0..100u64);
        let qx = rng.gen_range(-60.0..60.0);
        let qw = rng.gen_range(1.0..80.0);
        let fed = build_fed(&specs, seed);
        let global = fed.network().global_space();
        let y = global.interval(1);
        let q = fed.query_from_bounds(0, &[qx, qx + qw, y.lo(), y.hi()]);
        match fed.run_query(&q, &PolicyKind::query_driven(3)) {
            Err(FederationError::NoParticipants { .. }) => {
                // Legal when the query misses every cluster.
            }
            Err(e) => panic!("unexpected error {e}"),
            Ok(out) => {
                assert!(out.selection.len() <= 3);
                assert!(out.accounting.samples_used <= out.accounting.samples_total);
                assert!(out.accounting.data_fraction() <= 1.0 + 1e-12);
                let lambdas = out.selection.lambda_weights();
                assert!((lambdas.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                if let Some(loss) = out.query_loss(fed.network(), &q) {
                    assert!(loss.is_finite() && loss >= 0.0);
                }
                // Participant rankings are positive and sorted.
                for w in out.selection.participants.windows(2) {
                    assert!(w[0].ranking >= w[1].ranking);
                }
                for p in &out.selection.participants {
                    assert!(p.ranking > 0.0);
                }
            }
        }
    }
}

/// Selection never invents nodes and never duplicates them.
#[test]
fn selection_returns_distinct_known_nodes() {
    let mut rng = rng_for(0xCC, 2);
    for _ in 0..CASES {
        let specs = population(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let fed = build_fed(&specs, seed);
        let bounds = fed.network().global_space().to_boundary_vec();
        let q = Query::from_boundary_vec(1, &bounds);
        for policy in [
            PolicyKind::query_driven(10),
            PolicyKind::Random { l: 10, seed },
            PolicyKind::AllNodes,
        ] {
            let ctx = SelectionContext::new(fed.network(), &q);
            let sel = policy.build().select(&ctx);
            let mut ids: Vec<usize> = sel.participants.iter().map(|p| p.node.0).collect();
            let before = ids.len();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(
                ids.len(),
                before,
                "duplicate participants from {}",
                policy.name()
            );
            for id in ids {
                assert!(id < fed.network().len());
            }
        }
    }
}

/// Data selectivity can only shrink what a participant trains on.
#[test]
fn selectivity_is_monotone() {
    let mut rng = rng_for(0xCC, 3);
    for _ in 0..CASES {
        let specs = population(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let qx = rng.gen_range(-60.0..60.0);
        let qw = rng.gen_range(5.0..60.0);
        let fed = build_fed(&specs, seed);
        let global = fed.network().global_space();
        let y = global.interval(1);
        let q = fed.query_from_bounds(2, &[qx, qx + qw, y.lo(), y.hi()]);
        let with = fed.run_query(
            &q,
            &PolicyKind::QueryDriven {
                epsilon: 0.05,
                l: 10,
            },
        );
        let without = fed.run_query(
            &q,
            &PolicyKind::QueryDrivenNoSelectivity {
                epsilon: 0.05,
                l: 10,
            },
        );
        if let (Ok(a), Ok(b)) = (with, without) {
            assert!(a.accounting.samples_used <= b.accounting.samples_used);
            assert_eq!(a.selection.len(), b.selection.len());
        }
    }
}

/// A larger ε never selects *more* clusters on any node.
#[test]
fn epsilon_is_monotone() {
    let mut rng = rng_for(0xCC, 4);
    for _ in 0..CASES {
        let specs = population(&mut rng);
        let seed = rng.gen_range(0..50u64);
        let fed = build_fed(&specs, seed);
        let bounds = fed.network().global_space().to_boundary_vec();
        let q = Query::from_boundary_vec(3, &bounds);
        let count = |eps: f64| {
            let policy = QueryDriven {
                epsilon: eps,
                ..QueryDriven::top_l(10)
            };
            let ctx = SelectionContext::new(fed.network(), &q);
            policy
                .select(&ctx)
                .participants
                .iter()
                .map(|p| p.supporting_clusters.len())
                .sum::<usize>()
        };
        let loose = count(0.01);
        let tight = count(0.3);
        assert!(
            tight <= loose,
            "eps=0.3 selected {tight} clusters vs {loose} at 0.01"
        );
    }
}
