//! Property-based tests spanning the whole pipeline: random node
//! populations and random queries must uphold the system invariants.

use proptest::prelude::*;
use qens::prelude::*;
use qens::airdata::scenario::{nodes_from_specs, NodeSpec};

/// Strategy: a population of 2–6 synthetic regression nodes with random
/// ranges and slopes.
fn population() -> impl Strategy<Value = Vec<NodeSpec>> {
    prop::collection::vec(
        (-50.0_f64..50.0, 5.0_f64..60.0, -4.0_f64..4.0, -20.0_f64..20.0, 0.5_f64..5.0).prop_map(
            |(lo, span, slope, intercept, noise)| NodeSpec {
                x_range: (lo, lo + span),
                slope,
                intercept,
                noise_std: noise,
            },
        ),
        2..6,
    )
}

fn build_fed(specs: &[NodeSpec], seed: u64) -> Federation {
    let nodes = nodes_from_specs(specs, 60, seed);
    FederationBuilder::new()
        .datasets(nodes.into_iter().map(|n| (n.name, n.dataset)).collect())
        .clusters_per_node(4)
        .seed(seed)
        .epochs(3)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the population and query, a successful round satisfies
    /// the resource and weight invariants.
    #[test]
    fn round_invariants(specs in population(), seed in 0_u64..100,
                        qx in -60.0_f64..60.0, qw in 1.0_f64..80.0) {
        let fed = build_fed(&specs, seed);
        let global = fed.network().global_space();
        let y = global.interval(1);
        let q = fed.query_from_bounds(0, &[qx, qx + qw, y.lo(), y.hi()]);
        match fed.run_query(&q, &PolicyKind::query_driven(3)) {
            Err(FederationError::NoParticipants { .. }) => {
                // Legal when the query misses every cluster.
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
            Ok(out) => {
                prop_assert!(out.selection.len() <= 3);
                prop_assert!(out.accounting.samples_used <= out.accounting.samples_total);
                prop_assert!(out.accounting.data_fraction() <= 1.0 + 1e-12);
                let lambdas = out.selection.lambda_weights();
                prop_assert!((lambdas.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                if let Some(loss) = out.query_loss(fed.network(), &q) {
                    prop_assert!(loss.is_finite() && loss >= 0.0);
                }
                // Participant rankings are positive and sorted.
                for w in out.selection.participants.windows(2) {
                    prop_assert!(w[0].ranking >= w[1].ranking);
                }
                for p in &out.selection.participants {
                    prop_assert!(p.ranking > 0.0);
                }
            }
        }
    }

    /// Selection never invents nodes and never duplicates them.
    #[test]
    fn selection_returns_distinct_known_nodes(specs in population(), seed in 0_u64..50) {
        let fed = build_fed(&specs, seed);
        let bounds = fed.network().global_space().to_boundary_vec();
        let q = Query::from_boundary_vec(1, &bounds);
        for policy in [
            PolicyKind::query_driven(10),
            PolicyKind::Random { l: 10, seed },
            PolicyKind::AllNodes,
        ] {
            let ctx = SelectionContext::new(fed.network(), &q);
            let sel = policy.build().select(&ctx);
            let mut ids: Vec<usize> = sel.participants.iter().map(|p| p.node.0).collect();
            let before = ids.len();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "duplicate participants from {}", policy.name());
            for id in ids {
                prop_assert!(id < fed.network().len());
            }
        }
    }

    /// Data selectivity can only shrink what a participant trains on.
    #[test]
    fn selectivity_is_monotone(specs in population(), seed in 0_u64..50,
                               qx in -60.0_f64..60.0, qw in 5.0_f64..60.0) {
        let fed = build_fed(&specs, seed);
        let global = fed.network().global_space();
        let y = global.interval(1);
        let q = fed.query_from_bounds(2, &[qx, qx + qw, y.lo(), y.hi()]);
        let with = fed.run_query(&q, &PolicyKind::QueryDriven { epsilon: 0.05, l: 10 });
        let without = fed.run_query(&q, &PolicyKind::QueryDrivenNoSelectivity { epsilon: 0.05, l: 10 });
        if let (Ok(a), Ok(b)) = (with, without) {
            prop_assert!(a.accounting.samples_used <= b.accounting.samples_used);
            prop_assert_eq!(a.selection.len(), b.selection.len());
        }
    }

    /// A larger ε never selects *more* clusters on any node.
    #[test]
    fn epsilon_is_monotone(specs in population(), seed in 0_u64..50) {
        let fed = build_fed(&specs, seed);
        let bounds = fed.network().global_space().to_boundary_vec();
        let q = Query::from_boundary_vec(3, &bounds);
        let count = |eps: f64| {
            let policy = QueryDriven { epsilon: eps, ..QueryDriven::top_l(10) };
            let ctx = SelectionContext::new(fed.network(), &q);
            policy
                .select(&ctx)
                .participants
                .iter()
                .map(|p| p.supporting_clusters.len())
                .sum::<usize>()
        };
        let loose = count(0.01);
        let tight = count(0.3);
        prop_assert!(tight <= loose, "eps=0.3 selected {tight} clusters vs {loose} at 0.01");
    }
}
