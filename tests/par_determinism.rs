//! Cross-layer determinism suite for the bounded thread pool (`par`).
//!
//! The pool's contract is that worker count is *unobservable* in every
//! domain result: chunk boundaries depend only on input sizes, partial
//! reductions happen in chunk order on the caller, and each task writes
//! a fixed output slot. These tests pin that contract at every layer the
//! pool is wired through:
//!
//! * `cluster`: k-means fits are bit-identical across pool sizes,
//! * `selection`: query-driven selections are identical across pool sizes,
//! * `fedlearn`: full federation rounds (models, losses, ledgers) are
//!   bit-identical across pinned thread counts and the serial path,
//! * `telemetry`: domain counter totals agree across pool sizes (the
//!   pool's own scheduling metrics are explicitly *not* part of the
//!   contract — inline vs pooled task counts legitimately differ).
//!
//! The `QENS_THREADS` env path (the global pool) is covered separately
//! by `scripts/verify.sh`, which re-runs the whole test suite under
//! `QENS_THREADS=2`; here we inject pools explicitly so tests stay
//! race-free under the parallel test harness.

use qens::cluster::{KMeans, KMeansConfig};
use qens::fedlearn::{run_query, FederationConfig, GlobalModel};
use qens::linalg::rng::{self, Rng};
use qens::linalg::Matrix;
use qens::par::{self, ThreadPool};
use qens::prelude::*;
use qens::selection::{QueryDriven, SelectionContext};
use qens::telemetry;

/// Serialises tests that flip the process-global telemetry state.
fn telemetry_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn blob_matrix(rows: usize, seed: u64) -> Matrix {
    let mut r = rng::rng_for(seed, 0xDE7);
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|i| {
            let cx = ((i % 4) as f64) * 10.0;
            vec![
                cx + r.gen_range(-1.5..1.5),
                -cx + r.gen_range(-1.5..1.5),
                r.gen_range(0.0..3.0),
            ]
        })
        .collect();
    Matrix::from_rows(&data)
}

fn fed(seed: u64) -> Federation {
    FederationBuilder::new()
        .heterogeneous_nodes(5, 80)
        .clusters_per_node(3)
        .seed(seed)
        .epochs(4)
        .build()
}

/// Every pool size the suite sweeps, including the inline serial pool.
fn pools() -> Vec<ThreadPool> {
    vec![ThreadPool::new(1), ThreadPool::new(2), ThreadPool::new(4)]
}

/// Layer 1: k-means fits are bit-identical for any worker count.
#[test]
fn kmeans_fits_are_bit_identical_across_pool_sizes() {
    let data = blob_matrix(900, 5);
    let cfg = KMeansConfig::with_k(4, 17);
    let reference = KMeans::fit_with_pool(&data, &cfg, &ThreadPool::new(1));
    for pool in pools() {
        let got = KMeans::fit_with_pool(&data, &cfg, &pool);
        assert_eq!(got.assignments(), reference.assignments());
        assert_eq!(got.iterations(), reference.iterations());
        assert_eq!(
            got.inertia().to_bits(),
            reference.inertia().to_bits(),
            "inertia diverged on pool of {}",
            pool.threads()
        );
        for (a, b) in got
            .centroids()
            .as_slice()
            .iter()
            .zip(reference.centroids().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// Layer 2: node selection (scores, rankings, supporting clusters, cap
/// and sort order) is identical for any worker count.
#[test]
fn selections_are_identical_across_pool_sizes() {
    let f = fed(9);
    let bounds = f.network().global_space().to_boundary_vec();
    let q = Query::from_boundary_vec(3, &bounds);
    let ctx = SelectionContext::new(f.network(), &q);
    let policy = QueryDriven::top_l(3);
    let reference = policy.select_with_pool(&ctx, &ThreadPool::new(1));
    assert!(!reference.is_empty());
    for pool in pools() {
        let got = policy.select_with_pool(&ctx, &pool);
        assert_eq!(
            got.participants.len(),
            reference.participants.len(),
            "participant count diverged on pool of {}",
            pool.threads()
        );
        for (a, b) in got.participants.iter().zip(&reference.participants) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.ranking.to_bits(), b.ranking.to_bits());
            assert_eq!(a.supporting_clusters.len(), b.supporting_clusters.len());
            for (ca, cb) in a.supporting_clusters.iter().zip(&b.supporting_clusters) {
                assert_eq!(ca.cluster_id, cb.cluster_id);
                assert_eq!(ca.overlap.to_bits(), cb.overlap.to_bits());
            }
        }
    }
}

/// Layer 3: the full federation round — global model, query loss and the
/// deterministic ledger columns — is bit-identical whether participants
/// train serially, on a 1-thread pool, or on 4 workers.
#[test]
fn full_rounds_are_bit_identical_across_thread_counts() {
    let f = fed(27);
    let bounds = f.network().global_space().to_boundary_vec();
    let q = Query::from_boundary_vec(1, &bounds);
    let policy = QueryDriven::top_l(3);

    let configs: Vec<FederationConfig> = vec![
        FederationConfig {
            parallel: false,
            ..f.config().clone()
        },
        f.config().clone().with_thread_count(1),
        f.config().clone().with_thread_count(2),
        f.config().clone().with_thread_count(4),
    ];
    let outcomes: Vec<_> = configs
        .iter()
        .map(|cfg| run_query(f.network(), &q, &policy, cfg).expect("full-space query completes"))
        .collect();

    let reference = &outcomes[0];
    let ref_loss = reference.query_loss(f.network(), &q).unwrap();
    for (i, out) in outcomes.iter().enumerate().skip(1) {
        match (&out.global, &reference.global) {
            (
                GlobalModel::Ensemble {
                    members: a,
                    lambdas: la,
                },
                GlobalModel::Ensemble {
                    members: b,
                    lambdas: lb,
                },
            ) => {
                assert_eq!(a, b, "models diverged in config {i}");
                assert_eq!(la, lb, "lambdas diverged in config {i}");
            }
            (GlobalModel::Single(a), GlobalModel::Single(b)) => {
                assert_eq!(a, b, "models diverged in config {i}")
            }
            other => panic!("mismatched global model shapes: {other:?}"),
        }
        let loss = out.query_loss(f.network(), &q).unwrap();
        assert_eq!(
            loss.to_bits(),
            ref_loss.to_bits(),
            "loss diverged in config {i}"
        );
        // Deterministic ledger columns (wall_seconds is real time and
        // legitimately differs; sum-vs-max semantics are pinned in
        // fedlearn's unit tests).
        assert_eq!(
            out.accounting.nodes_selected,
            reference.accounting.nodes_selected
        );
        assert_eq!(
            out.accounting.samples_used,
            reference.accounting.samples_used
        );
        assert_eq!(
            out.accounting.sample_visits,
            reference.accounting.sample_visits
        );
        assert_eq!(
            out.accounting.bytes_transferred,
            reference.accounting.bytes_transferred
        );
        assert_eq!(
            out.accounting.sim_seconds.to_bits(),
            reference.accounting.sim_seconds.to_bits()
        );
    }
}

/// Layer 4: domain telemetry counters total identically for every pool
/// size. Pool scheduling metrics (`qens_par_*`) are excluded — inline vs
/// queued task counts are scheduling detail, not domain state.
#[test]
fn domain_counter_totals_agree_across_pool_sizes() {
    let _g = telemetry_lock();
    telemetry::set_enabled(true);

    let f = fed(33);
    let bounds = f.network().global_space().to_boundary_vec();
    let q = Query::from_boundary_vec(6, &bounds);
    let policy = QueryDriven::top_l(3);

    let mut totals: Vec<Vec<(String, u64)>> = Vec::new();
    for threads in [1usize, 4] {
        telemetry::global().reset();
        let cfg = f.config().clone().with_thread_count(threads);
        run_query(f.network(), &q, &policy, &cfg).expect("query completes");
        let snap = telemetry::global().snapshot();
        let mut domain: Vec<(String, u64)> = snap
            .counters
            .iter()
            .filter(|(name, _)| !name.starts_with("qens_par_"))
            .cloned()
            .collect();
        domain.sort();
        assert!(!domain.is_empty(), "telemetry recorded nothing");
        totals.push(domain);
    }
    telemetry::set_enabled(false);

    assert_eq!(
        totals[0], totals[1],
        "domain counter totals diverged between 1 and 4 workers"
    );
}

/// The process-wide sized-pool cache hands back the same pool for the
/// same size — `with_thread_count` never spawns per-query threads.
#[test]
fn sized_pools_are_cached_per_size() {
    let a = par::sized(3);
    let b = par::sized(3);
    assert!(std::sync::Arc::ptr_eq(&a, &b));
    assert_eq!(a.threads(), 3);
    let one = par::sized(1);
    assert_eq!(one.threads(), 1);
    assert!(!std::sync::Arc::ptr_eq(&a, &one));
}
