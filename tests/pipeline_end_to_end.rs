//! End-to-end reproductions of the paper's experimental *shapes* at
//! test-suite scale (fewer epochs/queries than the bench harness, same
//! qualitative claims).

use qens::prelude::*;

/// Table I shape: on a homogeneous population, all-node selection and
/// random selection land within a few percent of each other.
#[test]
fn table1_shape_homogeneous_random_matches_all() {
    let fed = FederationBuilder::new()
        .homogeneous_nodes(10, 200)
        .seed(1)
        .epochs(12)
        .build();
    let wl = fed.workload(&WorkloadConfig {
        n_queries: 10,
        ..WorkloadConfig::paper_default(8)
    });
    let rows = compare_policies(
        &fed,
        &wl,
        &[PolicyKind::AllNodes, PolicyKind::Random { l: 3, seed: 6 }],
    );
    let all = rows[0].mean_loss.expect("all-nodes completed");
    let random = rows[1].mean_loss.expect("random completed");
    let ratio = random / all;
    assert!(
        (0.5..2.0).contains(&ratio),
        "homogeneous population: random ({random}) and all ({all}) should be comparable"
    );
}

/// Table II shape: on a heterogeneous population, selecting a compatible
/// node gives an order-of-magnitude smaller loss than a random node.
#[test]
fn table2_shape_heterogeneous_compatible_vs_random() {
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(10, 200)
        .seed(2)
        .epochs(12)
        .build();
    // Queries over the leader pattern; ours picks the compatible node,
    // random picks anything. Average across queries.
    let mut ours_sum = 0.0;
    let mut random_sum = 0.0;
    let mut n = 0;
    for qid in 0..6u64 {
        let q = fed.query_from_bounds(qid, &[0.0, 20.0, 0.0, 45.0]);
        let ours = fed.run_query(&q, &PolicyKind::query_driven(1)).unwrap();
        let random = fed
            .run_query(&q, &PolicyKind::Random { l: 1, seed: 9 })
            .unwrap();
        ours_sum += ours.query_loss(fed.network(), &q).unwrap();
        random_sum += random.query_loss(fed.network(), &q).unwrap();
        n += 1;
    }
    assert!(n > 0);
    assert!(
        random_sum > 5.0 * ours_sum,
        "heterogeneous population: random ({random_sum}) should be far worse than compatible ({ours_sum})"
    );
}

/// Fig. 7 shape: mean loss ordering Weighted <= Averaging < Random, and
/// ours beats GT, on the heterogeneous population.
#[test]
fn fig7_shape_loss_ordering() {
    let base = FederationBuilder::new()
        .heterogeneous_nodes(10, 150)
        .seed(3)
        .epochs(8);
    let weighted = base
        .clone()
        .aggregation(Aggregation::WeightedAveraging)
        .build();
    let plain = base
        .clone()
        .aggregation(Aggregation::ModelAveraging)
        .build();
    let wl = weighted.workload(&WorkloadConfig {
        n_queries: 20,
        ..WorkloadConfig::paper_default(17)
    });

    let w = weighted
        .run_workload(&wl, &PolicyKind::query_driven(3))
        .mean_loss()
        .expect("weighted completed");
    let a = plain
        .run_workload(&wl, &PolicyKind::query_driven(3))
        .mean_loss()
        .expect("averaging completed");
    let r = weighted
        .run_workload(&wl, &PolicyKind::Random { l: 3, seed: 5 })
        .mean_loss()
        .expect("random completed");
    let g = weighted
        .run_workload(
            &wl,
            &PolicyKind::GameTheory {
                leader: 0,
                l: 3,
                seed: 5,
            },
        )
        .mean_loss()
        .expect("gt completed");

    assert!(w < r, "weighted {w} must beat random {r}");
    assert!(a < r, "averaging {a} must beat random {r}");
    assert!(w < g, "weighted {w} must beat game-theory {g}");
    assert!(
        w <= a * 1.25,
        "weighted {w} should not trail plain averaging {a} by much"
    );
}

/// Fig. 8 shape: with query-driven data selectivity, per-query training
/// time is never higher and is lower overall.
#[test]
fn fig8_shape_training_time_savings() {
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(8, 200)
        .seed(4)
        .epochs(6)
        .build();
    let wl = fed.workload(&WorkloadConfig {
        n_queries: 12,
        ..WorkloadConfig::paper_default(23)
    });
    let series = selectivity_comparison(&fed, &wl, 0.05, 4);
    assert!(series.query_ids.len() >= 6, "too few comparable queries");
    for i in 0..series.query_ids.len() {
        assert!(series.with_seconds[i] <= series.without_seconds[i] + 1e-12);
    }
    let speedup = series.mean_speedup().expect("non-empty series");
    assert!(speedup > 1.2, "expected a visible speedup, got {speedup}");
}

/// Fig. 9 shape: the query-driven mechanism needs a small fraction of
/// the total data per query; without it the same nodes contribute all
/// their data.
#[test]
fn fig9_shape_data_fraction_savings() {
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(8, 200)
        .seed(5)
        .epochs(6)
        .build();
    let wl = fed.workload(&WorkloadConfig {
        n_queries: 12,
        ..WorkloadConfig::paper_default(29)
    });
    let series = selectivity_comparison(&fed, &wl, 0.05, 4);
    let mean_with: f64 =
        series.with_fraction.iter().sum::<f64>() / series.with_fraction.len() as f64;
    let mean_without: f64 =
        series.without_fraction.iter().sum::<f64>() / series.without_fraction.len() as f64;
    assert!(mean_with < mean_without, "selectivity must reduce data use");
    assert!(
        mean_with < 0.5,
        "query-driven should need a minority of the data, got {mean_with}"
    );
}

/// The §II pre-test experiment: probe losses separate the two regimes.
#[test]
fn pretest_distinguishes_homogeneous_from_heterogeneous() {
    let spread = |fed: &Federation| {
        let gt = GameTheory::paper_default(0, fed.network().len(), 7);
        let bounds = fed.network().global_space().to_boundary_vec();
        let q = Query::from_boundary_vec(0, &bounds);
        let ctx = SelectionContext::new(fed.network(), &q);
        let losses = gt.probe_losses(&ctx);
        let max = losses.iter().cloned().fold(f64::MIN, f64::max);
        let min = losses.iter().cloned().fold(f64::MAX, f64::min);
        max / min.max(1e-12)
    };
    let homo = FederationBuilder::new()
        .homogeneous_nodes(8, 150)
        .seed(6)
        .epochs(6)
        .build();
    let hetero = FederationBuilder::new()
        .heterogeneous_nodes(8, 150)
        .seed(6)
        .epochs(6)
        .build();
    let s_homo = spread(&homo);
    let s_hetero = spread(&hetero);
    assert!(s_homo < 5.0, "homogeneous probe spread {s_homo} too high");
    assert!(
        s_hetero > 20.0,
        "heterogeneous probe spread {s_hetero} too low"
    );
}
