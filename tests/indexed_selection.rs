//! Integration tests for spatial-index candidate generation
//! ([`qens::selection::IndexedQueryDriven`] and the cache composition
//! [`CachedQueryDriven::with_index`]):
//!
//! * indexed and full-scan selections must be **bitwise identical** —
//!   every ranking and every supporting-cluster overlap, participants
//!   and standby tail alike — at any worker count (`QENS_THREADS` ∈
//!   {1, 2, 4} in CI) and for every workload kind,
//! * the cache+index composition must stay exact while still hitting,
//! * summary churn (absorb + re-quantisation) and membership growth
//!   must each trigger a deterministic rebuild and stay exact,
//! * a federation under a 0.2-dropout fault plan must produce the same
//!   selections, fault trace and final cohort with the index on or off,
//! * the `qens_index_*` counters must reach the Prometheus scrape
//!   surface format-conformant, and the probe/rebuild trace instants
//!   must land in the Chrome trace.

use qens::par::ThreadPool;
use qens::prelude::*;
use qens::selection::{GridConfig, IndexedQueryDriven};
use qens::telemetry;
use qens::workload::generate;

fn network(seed: u64) -> EdgeNetwork {
    let nodes = scenario::heterogeneous_nodes(6, 80, seed);
    let mut net =
        EdgeNetwork::from_datasets(nodes.into_iter().map(|n| (n.name, n.dataset)).collect());
    net.quantize_all(5, seed);
    net
}

fn workload_of(kind: WorkloadKind, n_queries: usize, space: &HyperRect) -> QueryWorkload {
    generate(
        space,
        &WorkloadConfig {
            n_queries,
            halfwidth_frac: (0.10, 0.25),
            kind,
            seed: 4242,
        },
    )
}

fn assert_bitwise_eq(a: &Selection, b: &Selection, what: &str) {
    assert_eq!(a, b, "{what}: selections diverge");
    for (x, y) in a
        .participants
        .iter()
        .chain(&a.standby)
        .zip(b.participants.iter().chain(&b.standby))
    {
        assert_eq!(
            x.ranking.to_bits(),
            y.ranking.to_bits(),
            "{what}: ranking bits diverge on node {}",
            x.node
        );
        for (cx, cy) in x.supporting_clusters.iter().zip(&y.supporting_clusters) {
            assert_eq!(
                cx.overlap.to_bits(),
                cy.overlap.to_bits(),
                "{what}: overlap bits diverge on node {} cluster {}",
                x.node,
                cx.cluster_id
            );
        }
    }
}

/// The acceptance contract (ISSUE 10): for a uniform, a drifting and a
/// hotspot stream, the indexed policy returns a bitwise-identical
/// `Selection` for every query at 1, 2 and 4 workers, re-using one
/// built index across all thread counts — candidates generated under
/// one pool schedule must serve under another.
#[test]
fn indexed_selections_are_bitwise_identical_across_threads_and_workloads() {
    let net = network(4);
    let space = net.global_space();
    let kinds: Vec<(&str, QueryWorkload)> = vec![
        ("uniform", workload_of(WorkloadKind::Uniform, 60, &space)),
        (
            "drifting",
            workload_of(
                WorkloadKind::Drifting {
                    step_frac: 0.02,
                    spread_frac: 0.03,
                },
                200,
                &space,
            ),
        ),
        (
            "hotspot",
            workload_of(
                WorkloadKind::Hotspot {
                    hotspots: 3,
                    spread_frac: 0.05,
                },
                60,
                &space,
            ),
        ),
    ];
    let plain = QueryDriven::top_l(3);
    for (name, wl) in &kinds {
        let indexed = IndexedQueryDriven::new(plain.clone(), GridConfig::default());
        for threads in [1usize, 2, 4] {
            let pool = ThreadPool::new(threads);
            for q in &wl.queries {
                let ctx = SelectionContext::new(&net, q);
                let want = plain.select_with_pool(&ctx, &pool);
                let got = indexed.select_with_pool(&ctx, &pool);
                assert_bitwise_eq(
                    &want,
                    &got,
                    &format!("{name} query {} at {threads} threads", q.id()),
                );
            }
        }
        let stats = indexed.index_stats();
        assert_eq!(stats.rebuilds, 1, "{name}: one bulk build, no churn");
        assert_eq!(
            stats.probes,
            3 * wl.len() as u64,
            "{name}: every selection probes the index"
        );
        assert_eq!(stats.fallbacks, 0, "{name}: ε > 0 never falls back");
    }
}

/// Cache over index: hits bypass candidate generation entirely, misses
/// go through it — and the stream is still served bit-identically to
/// the plain scan.
#[test]
fn cache_and_index_compose_exactly() {
    let net = network(4);
    let space = net.global_space();
    let wl = workload_of(
        WorkloadKind::Drifting {
            step_frac: 0.02,
            spread_frac: 0.03,
        },
        120,
        &space,
    );
    let plain = QueryDriven::top_l(3);
    let both = CachedQueryDriven::with_index(
        plain.clone(),
        CacheConfig {
            bucket_width: 25.0,
            ..CacheConfig::default()
        },
        GridConfig::default(),
    );
    let pool = ThreadPool::new(2);
    for q in &wl.queries {
        let ctx = SelectionContext::new(&net, q);
        assert_bitwise_eq(
            &plain.select_with_pool(&ctx, &pool),
            &both.select_with_pool(&ctx, &pool),
            &format!("cache+index query {}", q.id()),
        );
    }
    let cache = both.stats();
    assert!(cache.hits > 0, "drifting stream must hit ({cache:?})");
    assert!(cache.misses > 0, "fresh cache must miss ({cache:?})");
    let index = both.index_stats().expect("indexed cache exposes stats");
    assert_eq!(index.rebuilds, 1);
    assert_eq!(
        index.probes, cache.misses,
        "exactly the misses go through the index"
    );
}

/// Summary churn (absorb + re-quantisation) bumps one node's epoch;
/// membership growth bumps the network's epoch. Each must trigger
/// exactly one deterministic rebuild, and every selection before and
/// after must still match the scan bitwise.
#[test]
fn churn_rebuilds_the_index_and_stays_exact() {
    let mut net = network(9);
    let plain = QueryDriven::top_l(3);
    let indexed = IndexedQueryDriven::new(plain.clone(), GridConfig::default());
    let space = net.global_space();
    let wl = workload_of(WorkloadKind::Uniform, 8, &space);
    let pool = ThreadPool::new(2);
    let run_all = |net: &EdgeNetwork, what: &str| {
        for q in &wl.queries {
            let ctx = SelectionContext::new(net, q);
            assert_bitwise_eq(
                &plain.select_with_pool(&ctx, &pool),
                &indexed.select_with_pool(&ctx, &pool),
                what,
            );
        }
    };
    run_all(&net, "before churn");
    assert_eq!(indexed.index_stats().rebuilds, 1);

    // Summary churn: node 2 absorbs fresh samples and re-quantises.
    let extra = scenario::heterogeneous_nodes(2, 30, 77)
        .into_iter()
        .next()
        .unwrap()
        .dataset;
    net.node_mut(NodeId(2)).absorb(&extra);
    net.node_mut(NodeId(2)).quantize(5, 9);
    run_all(&net, "after absorb");
    assert_eq!(
        indexed.index_stats().rebuilds,
        2,
        "summary-epoch drift must rebuild once"
    );

    // Membership churn: a node joins the fleet (and is quantised, as
    // the index requires of every member).
    let late = scenario::heterogeneous_nodes(2, 40, 78)
        .into_iter()
        .next()
        .unwrap()
        .dataset;
    let id = net.add_node("late-joiner", late, 1.0);
    net.node_mut(id).quantize(5, 13);
    run_all(&net, "after join");
    assert_eq!(
        indexed.index_stats().rebuilds,
        3,
        "membership drift must rebuild once"
    );
}

/// `FederationBuilder::index(..)` is observationally transparent under
/// faults: with a 0.2-dropout plan, the indexed federation reproduces
/// the scan federation's selection, fault trace, accounting and final
/// cohort on every query.
#[test]
fn fault_plan_is_index_transparent() {
    let build = |index: bool| {
        FederationBuilder::new()
            .heterogeneous_nodes(5, 60)
            .clusters_per_node(3)
            .seed(7)
            .epochs(2)
            .faults(FaultSpec::dropout(7, 0.2))
            .fault_tolerance(FaultTolerance::full_strength())
            .index(index)
            .build()
    };
    let scan_fed = build(false);
    let indexed_fed = build(true);
    assert!(!scan_fed.index_enabled());
    assert!(indexed_fed.index_enabled());
    let policy = PolicyKind::query_driven(2);
    let wl = scan_fed.paper_workload(21);
    for q in wl.queries.iter().take(8) {
        let want = scan_fed.run_query(q, &policy).expect("scan round runs");
        let got = indexed_fed
            .run_query(q, &policy)
            .expect("indexed round runs");
        assert_bitwise_eq(&want.selection, &got.selection, "fault-plan selection");
        assert_eq!(
            want.fault_trace.to_json(),
            got.fault_trace.to_json(),
            "fault traces diverge on query {}",
            q.id()
        );
        // Everything in the ledger except measured wall time (the one
        // legitimately machine-varying field) must agree.
        let mut want_acc = want.accounting.clone();
        let mut got_acc = got.accounting.clone();
        want_acc.wall_seconds = 0.0;
        got_acc.wall_seconds = 0.0;
        assert_eq!(want_acc, got_acc, "accounting diverges on query {}", q.id());
        assert_eq!(
            want.final_cohort,
            got.final_cohort,
            "final cohorts diverge on query {}",
            q.id()
        );
    }
}

/// The index counters must reach the scrape surface: after a stream
/// that builds, probes, prunes and falls back, the Prometheus text
/// exposition carries a sample, HELP and TYPE for every `qens_index_*`
/// counter, all format-conformant.
#[test]
fn prometheus_export_covers_index_series() {
    let net = network(11);
    telemetry::set_enabled(true);
    let indexed = IndexedQueryDriven::new(QueryDriven::top_l(3), GridConfig::default());
    let q0 = Query::from_boundary_vec(0, &[0.0, 15.0, 0.0, 30.0]);
    let q1 = Query::from_boundary_vec(1, &[0.5, 15.5, 0.0, 30.0]);
    indexed.select(&SelectionContext::new(&net, &q0)); // build + probe
    indexed.select(&SelectionContext::new(&net, &q1)); // probe
                                                       // ε <= 0 is the full-scan safety valve; one hit on the fallback
                                                       // counter keeps that path observable too.
    let eps0 = IndexedQueryDriven::new(
        QueryDriven {
            epsilon: 0.0,
            ..QueryDriven::top_l(3)
        },
        GridConfig::default(),
    );
    eps0.select(&SelectionContext::new(&net, &q0));
    assert_eq!(eps0.index_stats().fallbacks, 1);
    let text = telemetry::export::to_prometheus(&telemetry::global().snapshot());
    telemetry::set_enabled(false);

    for series in [
        "qens_index_rebuilds_total",
        "qens_index_cells_probed_total",
        "qens_index_domains_pruned_total",
        "qens_index_candidates_total",
        "qens_index_fallbacks_total",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(series)),
            "export must contain a {series} sample"
        );
        assert!(
            text.contains(&format!("# HELP {series} ")),
            "{series} must carry HELP"
        );
        assert!(
            text.contains(&format!("# TYPE {series} ")),
            "{series} must carry TYPE"
        );
    }
    assert!(
        text.contains("qens_index_build_nanos"),
        "build-cost histogram must be exported"
    );
    // Exposition conformance over the index lines specifically.
    for line in text
        .lines()
        .filter(|l| l.starts_with("qens_index_") && !l.is_empty())
    {
        let (_, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in line: {line}"
        );
    }
    let stats = indexed.index_stats();
    assert_eq!(stats.rebuilds, 1);
    assert_eq!(stats.probes, 2);
}

/// Probing and rebuilding must leave trace instants on the logical
/// clock, so fleet-scale candidate generation is visible in Perfetto
/// next to the selection spans.
#[test]
fn trace_records_index_instants() {
    let net = network(5);
    telemetry::trace::set_mode(Some(telemetry::trace::Clock::Logical));
    telemetry::trace::clear();
    let indexed = IndexedQueryDriven::new(QueryDriven::top_l(3), GridConfig::default());
    let q = Query::from_boundary_vec(0, &[0.0, 15.0, 0.0, 30.0]);
    indexed.select(&SelectionContext::new(&net, &q));
    let doc = telemetry::trace::export_chrome(None);
    telemetry::trace::set_mode(None);
    assert!(
        doc.contains("selection.index_rebuild"),
        "trace must record the bulk build"
    );
    assert!(
        doc.contains("selection.index_probe"),
        "trace must record the probe"
    );
    assert!(
        doc.contains("selection.select_indexed"),
        "trace must record the indexed selection span"
    );
}
