//! Integration tests for batched federation serving
//! ([`Federation::run_batch`], the engine behind the query-serving
//! batcher):
//!
//! * batched and per-query execution must be **bitwise identical** —
//!   every selection ranking, every model weight, every loss — for the
//!   same workload under the same seed,
//! * errors are per-slot: a query with no participants fails alone
//!   while its batch mates still train,
//! * the admission-control config rides the builder end to end.

use qens::prelude::*;

fn cached_federation(seed: u64) -> Federation {
    FederationBuilder::new()
        .heterogeneous_nodes(5, 80)
        .clusters_per_node(4)
        .seed(seed)
        .epochs(3)
        .selection_cache(true)
        .selection_cache_bucket(20.0)
        .build()
}

/// A workload with deliberate bucket structure: repeats (same cache
/// bucket, the coalescing case), a slight drift (same bucket after
/// quantization) and a distinct sub-region.
fn bucketed_queries(fed: &Federation) -> Vec<Query> {
    vec![
        fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]),
        fed.query_from_bounds(1, &[0.0, 20.0, 0.0, 45.0]),
        fed.query_from_bounds(2, &[0.5, 20.5, 0.5, 45.5]),
        fed.query_from_bounds(3, &[0.0, 10.0, 0.0, 25.0]),
        fed.query_from_bounds(4, &[0.0, 20.0, 0.0, 45.0]),
    ]
}

#[test]
fn run_batch_is_bit_identical_to_run_query_for_a_workload() {
    let policy = PolicyKind::query_driven(3);
    let fed = cached_federation(21);
    let queries = bucketed_queries(&fed);
    let batched = fed.run_batch(&queries, &policy);
    assert_eq!(batched.len(), queries.len());
    for (query, outcome) in queries.iter().zip(&batched) {
        let batched_out = outcome.as_ref().expect("batched query trains");
        let solo = fed.run_query(query, &policy).expect("solo query trains");
        assert_eq!(
            batched_out.selection,
            solo.selection,
            "query {}: selections diverge",
            query.id()
        );
        for (b, s) in batched_out
            .selection
            .participants
            .iter()
            .zip(&solo.selection.participants)
        {
            assert_eq!(
                b.ranking.to_bits(),
                s.ranking.to_bits(),
                "query {}: ranking bits diverge on node {}",
                query.id(),
                b.node
            );
        }
        let b_loss = batched_out
            .query_loss(fed.network(), query)
            .expect("batched loss");
        let s_loss = solo.query_loss(fed.network(), query).expect("solo loss");
        assert_eq!(
            b_loss.to_bits(),
            s_loss.to_bits(),
            "query {}: loss bits diverge ({b_loss} vs {s_loss})",
            query.id()
        );
        assert_eq!(
            batched_out.accounting.samples_used,
            solo.accounting.samples_used,
            "query {}: training volume diverges",
            query.id()
        );
    }
}

#[test]
fn batch_errors_are_per_slot() {
    let policy = PolicyKind::query_driven(3);
    let fed = cached_federation(33);
    let queries = vec![
        fed.query_from_bounds(0, &[0.0, 20.0, 0.0, 45.0]),
        // Far outside every node's data region: no participants.
        fed.query_from_bounds(1, &[1e5, 2e5, 1e5, 2e5]),
        fed.query_from_bounds(2, &[0.0, 20.0, 0.0, 45.0]),
    ];
    let outcomes = fed.run_batch(&queries, &policy);
    assert!(outcomes[0].is_ok(), "first neighbour must train");
    assert!(
        matches!(
            outcomes[1],
            Err(FederationError::NoParticipants { query_id: 1 })
        ),
        "the empty-region query must fail alone, got {:?}",
        outcomes[1]
    );
    assert!(outcomes[2].is_ok(), "second neighbour must train");
}

#[test]
fn admission_config_flows_builder_to_federation() {
    let cfg = AdmissionConfig {
        queue_depth: 7,
        deadline_ms: Some(1500),
        batch_max: 4,
        body_cap_bytes: 1024,
    };
    let fed = FederationBuilder::new()
        .heterogeneous_nodes(3, 40)
        .clusters_per_node(2)
        .seed(5)
        .epochs(1)
        .admission(cfg)
        .build();
    assert_eq!(fed.admission(), cfg);
}
